#ifndef XAIDB_TEXT_ANCHORS_TEXT_H_
#define XAIDB_TEXT_ANCHORS_TEXT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/model.h"
#include "text/text_data.h"

namespace xai {

/// A word-presence anchor: whenever all `words` appear in a document, the
/// model predicts `outcome` with estimated `precision` (over random
/// deletions of the other words).
struct TextAnchor {
  std::vector<std::string> words;
  double outcome = 1.0;
  double precision = 0.0;

  std::string ToString() const;
};

struct TextAnchorsOptions {
  double precision_threshold = 0.95;
  double delta = 0.05;
  int beam_width = 4;
  int max_anchor_size = 3;
  int batch_size = 32;
  int max_samples_per_candidate = 1024;
  /// Probability each non-anchored word survives a perturbation.
  double keep_probability = 0.5;
  uint64_t seed = 555;
};

/// Anchors for text (Ribeiro et al. 2018 applied the method to text and
/// tabular alike; tutorial Sections 2.2 + 2.4): beam search over word
/// subsets of the document, with precision estimated by the same KL-LUCB
/// bandit as the tabular AnchorsExplainer — perturbations delete random
/// subsets of the non-anchored words and requery the model on the
/// bag-of-words encoding.
Result<TextAnchor> ExplainTextWithAnchor(const Model& model,
                                         const BowVectorizer& vectorizer,
                                         const std::string& document,
                                         const TextAnchorsOptions& opts = TextAnchorsOptions());

}  // namespace xai

#endif  // XAIDB_TEXT_ANCHORS_TEXT_H_
