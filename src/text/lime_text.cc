#include "text/lime_text.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.h"
#include "math/linalg.h"
#include "math/stats.h"

namespace xai {

std::vector<size_t> WordAttribution::TopWords(size_t k) const {
  return TopKByMagnitude(weights, k);
}

std::string WordAttribution::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << "prediction=" << prediction << "\n";
  for (size_t i : TopWords(weights.size()))
    os << "  " << words[i] << ": " << weights[i] << "\n";
  return os.str();
}

LimeTextExplainer::LimeTextExplainer(const Model& model,
                                     const BowVectorizer& vectorizer,
                                     LimeTextOptions opts)
    : model_(model), vectorizer_(vectorizer), opts_(opts) {}

Result<WordAttribution> LimeTextExplainer::Explain(
    const std::string& document) {
  // Distinct in-vocabulary words of the document, in first-appearance
  // order (out-of-vocabulary words cannot influence the model).
  std::vector<std::string> tokens = Tokenize(document);
  std::vector<std::string> words;
  std::set<std::string> seen;
  for (const std::string& tok : tokens) {
    if (vectorizer_.vocab().WordId(tok) < 0) continue;
    if (seen.insert(tok).second) words.push_back(tok);
  }
  if (words.empty())
    return Status::InvalidArgument(
        "LimeText: document has no in-vocabulary words");
  const size_t d = words.size();

  Rng rng(opts_.seed);
  const double width =
      opts_.kernel_width > 0 ? opts_.kernel_width : 0.25;
  const int n = opts_.num_samples;

  Matrix z(static_cast<size_t>(n), d + 1);
  std::vector<double> y(static_cast<size_t>(n));
  std::vector<double> w(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    // Delete a random subset of distinct words.
    std::vector<bool> keep(d, true);
    size_t removed = 0;
    for (size_t j = 0; j < d; ++j) {
      if (rng.Bernoulli(0.5) && removed + 1 < d) {
        keep[j] = false;
        ++removed;
      }
    }
    // Rebuild the document without the deleted words.
    std::string perturbed;
    for (const std::string& tok : tokens) {
      bool keep_tok = true;
      for (size_t j = 0; j < d; ++j) {
        if (!keep[j] && words[j] == tok) {
          keep_tok = false;
          break;
        }
      }
      if (!keep_tok) continue;
      if (!perturbed.empty()) perturbed += " ";
      perturbed += tok;
    }
    for (size_t j = 0; j < d; ++j) z(static_cast<size_t>(s), j) = keep[j];
    z(static_cast<size_t>(s), d) = 1.0;
    y[static_cast<size_t>(s)] =
        model_.Predict(vectorizer_.Transform(perturbed));
    const double frac_removed =
        static_cast<double>(removed) / static_cast<double>(d);
    w[static_cast<size_t>(s)] =
        std::exp(-frac_removed * frac_removed / (width * width));
  }

  XAI_ASSIGN_OR_RETURN(std::vector<double> coef,
                       RidgeRegression(z, y, opts_.lambda, &w));
  WordAttribution out;
  out.words = std::move(words);
  out.weights.assign(coef.begin(), coef.begin() + static_cast<long>(d));
  out.intercept = coef[d];
  out.prediction = model_.Predict(vectorizer_.Transform(document));
  return out;
}

}  // namespace xai
