#ifndef XAIDB_TEXT_LIME_TEXT_H_
#define XAIDB_TEXT_LIME_TEXT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/model.h"
#include "text/text_data.h"

namespace xai {

/// A per-word attribution for one document.
struct WordAttribution {
  std::vector<std::string> words;   // The document's distinct known words.
  std::vector<double> weights;      // Same order; sign = direction.
  double prediction = 0.0;
  double intercept = 0.0;

  /// Indices of the k most influential words by |weight|.
  std::vector<size_t> TopWords(size_t k) const;
  std::string ToString() const;
};

struct LimeTextOptions {
  int num_samples = 800;
  /// Exponential kernel width over cosine-ish distance (fraction of words
  /// removed); <= 0 means the LIME default 0.25.
  double kernel_width = -1.0;
  double lambda = 1e-3;
  uint64_t seed = 2024;
};

/// LIME for text (tutorial Section 2.4: "LIME can be applied to textual
/// data to identify specific words that explain the outcome of a text
/// classification model"): perturbations delete random word subsets, the
/// interpretable representation is the word-presence bit vector, and a
/// weighted ridge regression on it yields per-word influence on the
/// classifier (which consumes the bag-of-words encoding of each perturbed
/// document — fully model-agnostic).
class LimeTextExplainer {
 public:
  LimeTextExplainer(const Model& model, const BowVectorizer& vectorizer,
                    LimeTextOptions opts = {});

  Result<WordAttribution> Explain(const std::string& document);

 private:
  const Model& model_;
  const BowVectorizer& vectorizer_;
  LimeTextOptions opts_;
};

}  // namespace xai

#endif  // XAIDB_TEXT_LIME_TEXT_H_
