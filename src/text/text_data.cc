#include "text/text_data.h"

#include "common/rng.h"

namespace xai {

std::vector<double> BowVectorizer::Transform(
    const std::string& document) const {
  std::vector<double> x(vocab_.size(), 0.0);
  for (const std::string& tok : Tokenize(document)) {
    const int id = vocab_.WordId(tok);
    if (id >= 0) x[static_cast<size_t>(id)] += 1.0;
  }
  return x;
}

Dataset BowVectorizer::ToDataset(const TextCorpus& corpus) const {
  std::vector<FeatureSpec> specs;
  specs.reserve(vocab_.size());
  for (size_t j = 0; j < vocab_.size(); ++j)
    specs.push_back(FeatureSpec::Numeric(vocab_.word(j)));
  Matrix x(corpus.size(), vocab_.size());
  for (size_t i = 0; i < corpus.size(); ++i)
    x.SetRow(i, Transform(corpus.documents[i]));
  return Dataset(Schema(std::move(specs)), std::move(x), corpus.labels);
}

const std::vector<std::string>& PositiveSignalWords() {
  static const std::vector<std::string>& words = *new std::vector<std::string>{
      "excellent", "amazing", "wonderful", "great", "love",
      "perfect",   "fantastic"};
  return words;
}

const std::vector<std::string>& NegativeSignalWords() {
  static const std::vector<std::string>& words = *new std::vector<std::string>{
      "terrible", "awful", "broken", "waste", "horrible",
      "refund",   "disappointing"};
  return words;
}

TextCorpus MakeReviewCorpus(size_t n, const ReviewCorpusOptions& opts) {
  static const char* kFiller[] = {
      "the", "product", "arrived", "on", "time",  "box",    "color",
      "i",   "bought",  "this",    "it", "was",   "for",    "my",
      "use", "daily",   "price",   "is", "store", "online", "shipping",
      "and", "with",    "a",       "to", "of"};
  const size_t n_filler = sizeof(kFiller) / sizeof(kFiller[0]);
  Rng rng(opts.seed);
  TextCorpus corpus;
  corpus.documents.reserve(n);
  corpus.labels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = rng.Bernoulli(0.5);
    const auto& signal =
        positive ? PositiveSignalWords() : NegativeSignalWords();
    const auto& other =
        positive ? NegativeSignalWords() : PositiveSignalWords();
    std::string doc;
    const int len = 8 + static_cast<int>(rng.NextInt(10));
    int n_signal = 1 + static_cast<int>(rng.NextInt(3));
    for (int w = 0; w < len; ++w) {
      if (!doc.empty()) doc += " ";
      if (n_signal > 0 && rng.Bernoulli(0.3)) {
        doc += signal[rng.NextInt(signal.size())];
        --n_signal;
      } else if (rng.Bernoulli(0.04)) {
        // Occasional opposite-sentiment word keeps it non-trivial.
        doc += other[rng.NextInt(other.size())];
      } else {
        doc += kFiller[rng.NextInt(n_filler)];
      }
    }
    // Guarantee at least one signal word.
    if (n_signal == 3) doc += " " + signal[rng.NextInt(signal.size())];
    double label = positive ? 1.0 : 0.0;
    if (rng.Bernoulli(opts.label_noise)) label = 1.0 - label;
    corpus.documents.push_back(std::move(doc));
    corpus.labels.push_back(label);
  }
  return corpus;
}

}  // namespace xai
