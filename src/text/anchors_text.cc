#include "text/anchors_text.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.h"
#include "rule/anchors.h"  // KL confidence bounds.

namespace xai {

std::string TextAnchor::ToString() const {
  std::ostringstream os;
  os.precision(3);
  os << "IF document contains {";
  for (size_t i = 0; i < words.size(); ++i) {
    if (i) os << ", ";
    os << words[i];
  }
  os << "} THEN predict " << outcome << " (precision=" << precision << ")";
  return os.str();
}

namespace {

struct Candidate {
  std::vector<size_t> word_ids;  // Indices into the document's word list.
  size_t n = 0;
  size_t hits = 0;
  double precision() const {
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

}  // namespace

Result<TextAnchor> ExplainTextWithAnchor(const Model& model,
                                         const BowVectorizer& vectorizer,
                                         const std::string& document,
                                         const TextAnchorsOptions& opts) {
  std::vector<std::string> tokens = Tokenize(document);
  std::vector<std::string> words;
  std::set<std::string> seen;
  for (const std::string& tok : tokens) {
    if (vectorizer.vocab().WordId(tok) < 0) continue;
    if (seen.insert(tok).second) words.push_back(tok);
  }
  if (words.empty())
    return Status::InvalidArgument("TextAnchors: no in-vocabulary words");
  const size_t d = words.size();
  Rng rng(opts.seed);
  const double target =
      model.Predict(vectorizer.Transform(document)) >= 0.5 ? 1.0 : 0.0;

  auto sample_hit = [&](const Candidate& cand) {
    std::vector<bool> keep(d, false);
    for (size_t w : cand.word_ids) keep[w] = true;
    for (size_t j = 0; j < d; ++j)
      if (!keep[j] && rng.Bernoulli(opts.keep_probability)) keep[j] = true;
    std::string perturbed;
    for (const std::string& tok : tokens) {
      bool keep_tok = true;
      for (size_t j = 0; j < d; ++j) {
        if (!keep[j] && words[j] == tok) {
          keep_tok = false;
          break;
        }
      }
      if (!keep_tok) continue;
      if (!perturbed.empty()) perturbed += " ";
      perturbed += tok;
    }
    const double p = model.Predict(vectorizer.Transform(perturbed));
    return (p >= 0.5 ? 1.0 : 0.0) == target;
  };
  auto draw = [&](Candidate* cand, int k) {
    for (int i = 0; i < k; ++i)
      if (sample_hit(*cand)) ++cand->hits;
    cand->n += static_cast<size_t>(k);
  };

  const double beta = std::log(1.0 / opts.delta) +
                      std::log(static_cast<double>(d) + 1.0);
  std::vector<Candidate> beam = {Candidate{}};
  Candidate best;
  bool found = false;
  for (int size = 1; size <= opts.max_anchor_size && !found; ++size) {
    std::vector<Candidate> cands;
    std::set<std::vector<size_t>> dedup;
    for (const Candidate& b : beam) {
      for (size_t j = 0; j < d; ++j) {
        if (std::find(b.word_ids.begin(), b.word_ids.end(), j) !=
            b.word_ids.end())
          continue;
        Candidate c;
        c.word_ids = b.word_ids;
        c.word_ids.push_back(j);
        std::sort(c.word_ids.begin(), c.word_ids.end());
        if (dedup.insert(c.word_ids).second) cands.push_back(std::move(c));
      }
    }
    for (Candidate& c : cands) draw(&c, opts.batch_size);
    for (int round = 0; round < 12; ++round) {
      size_t best_i = 0;
      double best_ucb = -1.0;
      for (size_t i = 0; i < cands.size(); ++i) {
        const double ucb = KlUpperBound(
            cands[i].precision(), beta / static_cast<double>(cands[i].n));
        if (ucb > best_ucb) {
          best_ucb = ucb;
          best_i = i;
        }
      }
      Candidate& c = cands[best_i];
      if (static_cast<int>(c.n) >= opts.max_samples_per_candidate) break;
      const double lcb =
          KlLowerBound(c.precision(), beta / static_cast<double>(c.n));
      if (lcb >= opts.precision_threshold ||
          best_ucb < opts.precision_threshold)
        break;
      draw(&c, opts.batch_size);
    }
    for (const Candidate& c : cands) {
      const double lcb =
          KlLowerBound(c.precision(), beta / static_cast<double>(c.n));
      if (lcb >= opts.precision_threshold &&
          (!found || c.precision() > best.precision())) {
        best = c;
        found = true;
      }
    }
    if (!found) {
      std::sort(cands.begin(), cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.precision() > b.precision();
                });
      if (cands.size() > static_cast<size_t>(opts.beam_width))
        cands.resize(static_cast<size_t>(opts.beam_width));
      beam = std::move(cands);
    }
  }
  if (!found && !beam.empty()) best = beam.front();  // Soft anchor.

  TextAnchor anchor;
  anchor.outcome = target;
  anchor.precision = best.precision();
  for (size_t w : best.word_ids) anchor.words.push_back(words[w]);
  return anchor;
}

}  // namespace xai
