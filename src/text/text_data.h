#ifndef XAIDB_TEXT_TEXT_DATA_H_
#define XAIDB_TEXT_TEXT_DATA_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "text/vocab.h"

namespace xai {

/// A labeled text corpus (binary labels).
struct TextCorpus {
  std::vector<std::string> documents;
  std::vector<double> labels;

  size_t size() const { return documents.size(); }
};

/// Bag-of-words vectorizer over a fixed vocabulary: document -> dense
/// count vector (one numeric feature per vocabulary word). Dense is fine
/// at the vocabulary sizes of the synthetic corpus; the resulting Dataset
/// plugs into every tabular model and explainer in the library — which is
/// precisely how LIME treats text (tutorial Section 2.4).
class BowVectorizer {
 public:
  explicit BowVectorizer(Vocabulary vocab) : vocab_(std::move(vocab)) {}

  const Vocabulary& vocab() const { return vocab_; }

  std::vector<double> Transform(const std::string& document) const;
  /// Whole corpus -> tabular dataset (feature names = words).
  Dataset ToDataset(const TextCorpus& corpus) const;

 private:
  Vocabulary vocab_;
};

struct ReviewCorpusOptions {
  uint64_t seed = 1234;
  /// Probability a generated review's label is flipped (noise).
  double label_noise = 0.05;
};

/// Synthetic product-review corpus (the substitution for real text data;
/// see DESIGN.md): reviews mix sentiment-bearing words ("excellent",
/// "terrible", ...) with neutral filler; the label follows the sentiment
/// balance. Signal words are known, so tests can check that text
/// explainers recover exactly them.
TextCorpus MakeReviewCorpus(size_t n, const ReviewCorpusOptions& opts = ReviewCorpusOptions());

/// The generator's ground-truth signal words (positive, negative).
const std::vector<std::string>& PositiveSignalWords();
const std::vector<std::string>& NegativeSignalWords();

}  // namespace xai

#endif  // XAIDB_TEXT_TEXT_DATA_H_
