#ifndef XAIDB_TEXT_VOCAB_H_
#define XAIDB_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace xai {

/// Lowercased alphanumeric tokens of a document.
std::vector<std::string> Tokenize(const std::string& text);

/// Word <-> id mapping built from a corpus, with a minimum-count filter.
class Vocabulary {
 public:
  static Vocabulary Build(const std::vector<std::string>& documents,
                          size_t min_count = 2);

  size_t size() const { return words_.size(); }
  const std::string& word(size_t id) const { return words_[id]; }
  /// -1 when out of vocabulary.
  int WordId(const std::string& word) const;

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, size_t> ids_;
};

}  // namespace xai

#endif  // XAIDB_TEXT_VOCAB_H_
