#include "db/repair_shapley.h"

#include <algorithm>
#include <map>

namespace xai {

Result<std::vector<FdViolation>> FindFdViolations(
    const Relation& r, const FunctionalDependency& fd) {
  std::vector<size_t> lhs_idx;
  for (const std::string& c : fd.lhs) {
    XAI_ASSIGN_OR_RETURN(size_t j, r.ColumnIndex(c));
    lhs_idx.push_back(j);
  }
  XAI_ASSIGN_OR_RETURN(size_t rhs_idx, r.ColumnIndex(fd.rhs));

  // Group rows by lhs key; violations are cross-products of differing rhs
  // values within a group.
  std::map<std::vector<double>, std::vector<size_t>> groups;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    std::vector<double> key(lhs_idx.size());
    for (size_t k = 0; k < lhs_idx.size(); ++k) key[k] = r.row(i)[lhs_idx[k]];
    groups[key].push_back(i);
  }
  std::vector<FdViolation> out;
  for (const auto& [key, rows] : groups) {
    for (size_t a = 0; a < rows.size(); ++a) {
      for (size_t b = a + 1; b < rows.size(); ++b) {
        if (r.value(rows[a], rhs_idx) != r.value(rows[b], rhs_idx))
          out.push_back({rows[a], rows[b]});
      }
    }
  }
  return out;
}

Result<std::vector<double>> FdRepairShapley(const Relation& r,
                                            const FunctionalDependency& fd) {
  XAI_ASSIGN_OR_RETURN(std::vector<FdViolation> violations,
                       FindFdViolations(r, fd));
  std::vector<double> phi(r.num_rows(), 0.0);
  for (const FdViolation& v : violations) {
    // A pair's unit of inconsistency materializes exactly when both
    // members are present; by symmetry each gets half.
    phi[v.row_a] += 0.5;
    phi[v.row_b] += 0.5;
  }
  return phi;
}

Result<std::vector<size_t>> GreedyFdRepair(const Relation& r,
                                           const FunctionalDependency& fd) {
  XAI_ASSIGN_OR_RETURN(std::vector<FdViolation> violations,
                       FindFdViolations(r, fd));
  std::vector<bool> deleted(r.num_rows(), false);
  std::vector<size_t> order;
  for (;;) {
    std::vector<size_t> count(r.num_rows(), 0);
    bool any = false;
    for (const FdViolation& v : violations) {
      if (deleted[v.row_a] || deleted[v.row_b]) continue;
      ++count[v.row_a];
      ++count[v.row_b];
      any = true;
    }
    if (!any) break;
    const size_t worst = static_cast<size_t>(
        std::max_element(count.begin(), count.end()) - count.begin());
    deleted[worst] = true;
    order.push_back(worst);
  }
  return order;
}

}  // namespace xai
