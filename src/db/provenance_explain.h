#ifndef XAIDB_DB_PROVENANCE_EXPLAIN_H_
#define XAIDB_DB_PROVENANCE_EXPLAIN_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace xai {

/// Causal responsibility of a base tuple for a (Boolean) query answer
/// (Meliou et al. 2010, "WHY SO?"; tutorial Section 3
/// "Provenance-Based Explanations"). Given the answer's why-provenance
/// (a monotone DNF over base tuples), tuple t is a *counterfactual cause
/// with contingency Gamma* if after deleting Gamma the answer still holds
/// but deleting t too makes it false. Responsibility = 1 / (1 + |Gamma|)
/// for the minimum contingency; 0 if t is not a cause.
struct TupleResponsibility {
  TupleId tuple = 0;
  double responsibility = 0.0;
  /// A minimum contingency set achieving it.
  std::vector<TupleId> contingency;
};

/// Computes responsibility for every tuple appearing in the provenance.
/// The minimum contingency problem is a minimum hitting set over the
/// witnesses not containing t (NP-hard in general); exact via bounded
/// search when the provenance is small, greedy otherwise.
std::vector<TupleResponsibility> ComputeResponsibilities(
    const WhyProvenance& provenance, size_t exact_limit = 20);

/// For aggregate answers: ranks the lineage tuples of `row` in relation
/// `r` by their *sensitivity* — the answer change when the tuple is
/// deleted — given a re-evaluation callback. A simple but effective
/// intervention-based explanation for outlier aggregate results.
struct TupleSensitivity {
  TupleId tuple = 0;
  double delta = 0.0;  // answer(without tuple) - answer(with all).
};
std::vector<TupleSensitivity> RankByDeletionImpact(
    const std::vector<TupleId>& lineage,
    const std::function<double(const std::vector<TupleId>& deleted)>&
        reevaluate);

}  // namespace xai

#endif  // XAIDB_DB_PROVENANCE_EXPLAIN_H_
