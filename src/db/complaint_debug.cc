#include "db/complaint_debug.h"

#include <algorithm>

#include "math/stats.h"

namespace xai {

Result<std::vector<ComplaintSuspect>> RankComplaintSuspects(
    const LogisticRegression& model, const Dataset& train,
    const Dataset& serving, const Complaint& complaint,
    const InfluenceOptions& opts) {
  if (complaint.serving_rows.empty())
    return Status::InvalidArgument("Complaint: no serving rows");
  XAI_ASSIGN_OR_RETURN(InfluenceCalculator calc,
                       InfluenceCalculator::Create(model, train, opts));

  // Relaxed aggregate: sum over complained rows of p(x_v). Its gradient
  // w.r.t. each training point's removal is
  //   sum_v p_v (1 - p_v) * d margin_v / d removal_i.
  std::vector<double> total(train.n(), 0.0);
  for (size_t v : complaint.serving_rows) {
    if (v >= serving.n())
      return Status::OutOfRange("Complaint: serving row out of range");
    const std::vector<double> xv = serving.row(v);
    const double p = model.Predict(xv);
    const double sensitivity = p * (1.0 - p);
    const std::vector<double> dmargin = calc.InfluenceOnPrediction(xv);
    for (size_t i = 0; i < train.n(); ++i)
      total[i] += sensitivity * dmargin[i];
  }

  std::vector<ComplaintSuspect> out(train.n());
  for (size_t i = 0; i < train.n(); ++i) {
    out[i].train_row = i;
    // direction=+1 wants the count to rise after the repair (removal).
    out[i].score = static_cast<double>(complaint.direction) * total[i];
  }
  std::sort(out.begin(), out.end(),
            [](const ComplaintSuspect& a, const ComplaintSuspect& b) {
              return a.score > b.score;
            });
  return out;
}

}  // namespace xai
