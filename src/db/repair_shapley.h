#ifndef XAIDB_DB_REPAIR_SHAPLEY_H_
#define XAIDB_DB_REPAIR_SHAPLEY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace xai {

/// A functional dependency lhs -> rhs over a relation's columns.
struct FunctionalDependency {
  std::vector<std::string> lhs;
  std::string rhs;
};

/// A violating pair of tuples (by row index within the relation): they
/// agree on every lhs attribute but differ on rhs.
struct FdViolation {
  size_t row_a = 0;
  size_t row_b = 0;
};

/// All violating pairs of `fd` in `r`.
Result<std::vector<FdViolation>> FindFdViolations(
    const Relation& r, const FunctionalDependency& fd);

/// Shapley-based inconsistency attribution (Deutch, Frost, Gilad & Sheffer
/// 2021; tutorial Section 3 "Explanations in Databases": Shapley values
/// for database repairs). The game's players are the tuples and
///   v(S) = #violating pairs inside S;
/// a tuple's Shapley value is its share of the database's inconsistency —
/// the tuples to repair/delete first. Because v is a sum over pairs, the
/// value has the closed form
///   phi_t = (1/2) * #violating pairs containing t,
/// which this function returns in O(violations); the game-based route
/// exists for testing (see tests) and for non-additive extensions.
Result<std::vector<double>> FdRepairShapley(const Relation& r,
                                            const FunctionalDependency& fd);

/// Greedy minimum-repair suggestion: repeatedly delete the tuple with the
/// highest remaining violation count until no violations remain. Returns
/// row indices in deletion order. (Optimal vertex cover is NP-hard; the
/// greedy is the standard 2-ish approximation baseline.)
Result<std::vector<size_t>> GreedyFdRepair(const Relation& r,
                                           const FunctionalDependency& fd);

}  // namespace xai

#endif  // XAIDB_DB_REPAIR_SHAPLEY_H_
