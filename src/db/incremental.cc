#include "db/incremental.h"

#include "math/linalg.h"

namespace xai {

Result<IncrementalLinearRegression> IncrementalLinearRegression::Fit(
    const Dataset& ds, const Options& opts) {
  if (ds.n() == 0)
    return Status::InvalidArgument("IncrementalLinReg: empty data");
  const size_t d = ds.d();
  IncrementalLinearRegression m;
  m.d_ = d;
  m.n_ = ds.n();

  Matrix a(d + 1, d + 1);
  m.b_.assign(d + 1, 0.0);
  for (size_t i = 0; i < ds.n(); ++i) {
    const double* r = ds.x().RowPtr(i);
    for (size_t p = 0; p <= d; ++p) {
      const double xp = p < d ? r[p] : 1.0;
      for (size_t q = 0; q <= d; ++q) {
        const double xq = q < d ? r[q] : 1.0;
        a(p, q) += xp * xq;
      }
      m.b_[p] += xp * ds.y()[i];
    }
  }
  for (size_t j = 0; j < d; ++j) a(j, j) += opts.lambda;
  a(d, d) += 1e-12;
  XAI_ASSIGN_OR_RETURN(m.a_inv_, InverseSpd(a));
  return m;
}

Status IncrementalLinearRegression::RemoveRow(const std::vector<double>& x,
                                              double y) {
  if (x.size() != d_)
    return Status::InvalidArgument("IncrementalLinReg: arity mismatch");
  if (n_ == 0)
    return Status::FailedPrecondition("IncrementalLinReg: no rows left");
  std::vector<double> xa = x;
  xa.push_back(1.0);
  // A <- A - x x^T is Sherman-Morrison with u = -x, v = x.
  std::vector<double> neg = xa;
  for (double& v : neg) v = -v;
  XAI_RETURN_NOT_OK(ShermanMorrisonUpdate(&a_inv_, neg, xa));
  for (size_t p = 0; p <= d_; ++p) b_[p] -= xa[p] * y;
  --n_;
  return Status::OK();
}

Status IncrementalLinearRegression::RemoveRows(const Matrix& x,
                                               const std::vector<double>& y) {
  if (x.rows() != y.size())
    return Status::InvalidArgument("IncrementalLinReg: batch mismatch");
  for (size_t i = 0; i < x.rows(); ++i)
    XAI_RETURN_NOT_OK(RemoveRow(x.Row(i), y[i]));
  return Status::OK();
}

Status IncrementalLinearRegression::AddRow(const std::vector<double>& x,
                                           double y) {
  if (x.size() != d_)
    return Status::InvalidArgument("IncrementalLinReg: arity mismatch");
  std::vector<double> xa = x;
  xa.push_back(1.0);
  XAI_RETURN_NOT_OK(ShermanMorrisonUpdate(&a_inv_, xa, xa));
  for (size_t p = 0; p <= d_; ++p) b_[p] += xa[p] * y;
  ++n_;
  return Status::OK();
}

std::vector<double> IncrementalLinearRegression::Theta() const {
  return a_inv_ * b_;
}

double IncrementalLinearRegression::Predict(
    const std::vector<double>& x) const {
  const std::vector<double> theta = Theta();
  double s = theta[d_];
  for (size_t j = 0; j < d_; ++j) s += theta[j] * x[j];
  return s;
}

Result<IncrementalLogisticRegression> IncrementalLogisticRegression::Fit(
    const Dataset& ds, const LogisticRegression::Options& opts) {
  XAI_ASSIGN_OR_RETURN(LogisticRegression model,
                       LogisticRegression::Fit(ds, opts));
  return IncrementalLogisticRegression(ds, std::move(model), opts);
}

Result<std::vector<double>> IncrementalLogisticRegression::ThetaAfterRemoval(
    const std::vector<size_t>& rows, int newton_steps) const {
  Dataset reduced = ds_.RemoveRows(rows);
  LogisticRegression::Options o = opts_;
  o.max_iter = newton_steps;
  XAI_ASSIGN_OR_RETURN(
      LogisticRegression refreshed,
      LogisticRegression::FitFrom(reduced.x(), reduced.y(), model_.theta(),
                                  o));
  return refreshed.theta();
}

}  // namespace xai
