#include "db/bias_explain.h"

#include <cmath>
#include <map>

namespace xai {

Result<BiasReport> DetectQueryBias(
    const Relation& r, const std::string& treatment,
    const std::string& outcome,
    const std::vector<std::string>& confounders) {
  XAI_ASSIGN_OR_RETURN(size_t t_idx, r.ColumnIndex(treatment));
  XAI_ASSIGN_OR_RETURN(size_t o_idx, r.ColumnIndex(outcome));
  std::vector<size_t> c_idx;
  for (const std::string& c : confounders) {
    XAI_ASSIGN_OR_RETURN(size_t j, r.ColumnIndex(c));
    c_idx.push_back(j);
  }
  if (r.num_rows() == 0) return Status::InvalidArgument("empty relation");

  // Unadjusted contrast.
  double sum[2] = {0, 0};
  double n[2] = {0, 0};
  for (size_t i = 0; i < r.num_rows(); ++i) {
    const int t = r.value(i, t_idx) >= 0.5 ? 1 : 0;
    sum[t] += r.value(i, o_idx);
    n[t] += 1.0;
  }
  if (n[0] == 0.0 || n[1] == 0.0)
    return Status::InvalidArgument("a treatment arm is empty");
  BiasReport report;
  report.unadjusted_effect = sum[1] / n[1] - sum[0] / n[0];

  // Stratified (adjusted) contrast.
  struct Cell {
    double sum[2] = {0, 0};
    double n[2] = {0, 0};
  };
  std::map<std::vector<double>, Cell> strata;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    std::vector<double> key(c_idx.size());
    for (size_t k = 0; k < c_idx.size(); ++k) key[k] = r.value(i, c_idx[k]);
    Cell& cell = strata[key];
    const int t = r.value(i, t_idx) >= 0.5 ? 1 : 0;
    cell.sum[t] += r.value(i, o_idx);
    cell.n[t] += 1.0;
  }
  double total_weight = 0.0;
  double weighted_effect = 0.0;
  for (const auto& [key, cell] : strata) {
    if (cell.n[0] == 0.0 || cell.n[1] == 0.0) continue;  // No contrast.
    BiasReport::Stratum s;
    s.key = key;
    s.weight = cell.n[0] + cell.n[1];
    s.effect = cell.sum[1] / cell.n[1] - cell.sum[0] / cell.n[0];
    weighted_effect += s.weight * s.effect;
    total_weight += s.weight;
    report.strata.push_back(std::move(s));
  }
  if (total_weight == 0.0)
    return Status::FailedPrecondition(
        "no stratum contains both treatment arms");
  report.adjusted_effect = weighted_effect / total_weight;
  for (auto& s : report.strata) s.weight /= total_weight;
  report.simpson_reversal =
      report.unadjusted_effect * report.adjusted_effect < 0.0 &&
      std::abs(report.unadjusted_effect) > 1e-9 &&
      std::abs(report.adjusted_effect) > 1e-9;
  return report;
}

}  // namespace xai
