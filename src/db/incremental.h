#ifndef XAIDB_DB_INCREMENTAL_H_
#define XAIDB_DB_INCREMENTAL_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "math/matrix.h"
#include "model/logistic_regression.h"

namespace xai {

/// PrIU-style incremental maintenance of a ridge linear-regression model
/// (Wu, Tannen & Davidson 2020; tutorial Section 3 "Data-Based
/// Explanations"): the model's sufficient statistics A = X~^T X~ + reg and
/// b = X~^T y are maintained like a materialized view. Deleting a training
/// row is a rank-1 *downdate* applied to A^{-1} with Sherman-Morrison in
/// O(d^2), versus O(n d^2) for retraining from scratch — the speedup
/// experiment E9 measures, and the enabler of deletion-based data
/// debugging at interactive latency.
class IncrementalLinearRegression {
 public:
  struct Options {
    double lambda = 1e-6;
  };

  static Result<IncrementalLinearRegression> Fit(const Dataset& ds,
                                                 const Options& opts);

  /// Removes one training row (given explicitly; the class does not store
  /// the dataset). O(d^2).
  Status RemoveRow(const std::vector<double>& x, double y);

  /// Removes a batch of rows. O(k d^2).
  Status RemoveRows(const Matrix& x, const std::vector<double>& y);

  /// Inserts one training row (rank-1 update — the other direction of the
  /// view maintenance). O(d^2).
  Status AddRow(const std::vector<double>& x, double y);

  /// Current parameters [w; b], recomputed from the maintained statistics
  /// in O(d^2).
  std::vector<double> Theta() const;

  double Predict(const std::vector<double>& x) const;

  size_t remaining_rows() const { return n_; }

 private:
  IncrementalLinearRegression() = default;

  Matrix a_inv_;            // (X~^T X~ + reg)^{-1}, maintained incrementally.
  std::vector<double> b_;   // X~^T y.
  size_t n_ = 0;
  size_t d_ = 0;            // Features (without intercept).
};

/// Incremental refresh for logistic regression: warm-started Newton from
/// the current parameters on the reduced data. Not a closed-form view
/// update (logistic MLE has none), but 1-2 Newton steps from a warm start
/// converge orders of magnitude faster than cold retraining — the
/// HedgeCut/PrIU-flavoured practical recipe.
class IncrementalLogisticRegression {
 public:
  static Result<IncrementalLogisticRegression> Fit(
      const Dataset& ds, const LogisticRegression::Options& opts);

  /// Returns parameters after removing `rows` (indices into the original
  /// dataset), using `newton_steps` warm-started iterations.
  Result<std::vector<double>> ThetaAfterRemoval(const std::vector<size_t>& rows,
                                                int newton_steps = 2) const;

  const LogisticRegression& model() const { return model_; }

 private:
  IncrementalLogisticRegression(Dataset ds, LogisticRegression model,
                                LogisticRegression::Options opts)
      : ds_(std::move(ds)), model_(std::move(model)), opts_(opts) {}

  Dataset ds_;
  LogisticRegression model_;
  LogisticRegression::Options opts_;
};

}  // namespace xai

#endif  // XAIDB_DB_INCREMENTAL_H_
