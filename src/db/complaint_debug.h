#ifndef XAIDB_DB_COMPLAINT_DEBUG_H_
#define XAIDB_DB_COMPLAINT_DEBUG_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "model/logistic_regression.h"
#include "valuation/influence.h"

namespace xai {

/// A user complaint about an aggregate computed over model predictions
/// ("Query 2.0"): the COUNT of predicted-positive rows among
/// `serving_rows` should move in `direction` (+1: the count is too low,
/// -1: too high).
struct Complaint {
  std::vector<size_t> serving_rows;  // Row indices into the serving set.
  int direction = -1;
};

struct ComplaintSuspect {
  size_t train_row = 0;
  /// How much removing this training point moves the complained-about
  /// aggregate in the desired direction (higher = stronger suspect).
  double score = 0.0;
};

/// Rain-lite complaint-driven training-data debugging (Wu, Flokas, Wu &
/// Wang 2020; tutorial Section 3 "Data-Based Explanations"): relaxes the
/// predicted-positive COUNT to a sum of probabilities, then ranks training
/// points by the influence-function estimate of how much their removal
/// moves that relaxed aggregate in the complaint's direction. The top
/// suspects are the training tuples to inspect/repair.
Result<std::vector<ComplaintSuspect>> RankComplaintSuspects(
    const LogisticRegression& model, const Dataset& train,
    const Dataset& serving, const Complaint& complaint,
    const InfluenceOptions& opts = InfluenceOptions());

}  // namespace xai

#endif  // XAIDB_DB_COMPLAINT_DEBUG_H_
