#include "db/query_shapley.h"

#include "core/game.h"
#include "feature/shapley.h"

namespace xai {

Result<std::vector<double>> TupleShapley(size_t num_tuples,
                                         const SubDatabaseQueryFn& query,
                                         const QueryShapleyOptions& opts) {
  if (num_tuples == 0)
    return Status::InvalidArgument("TupleShapley: no tuples");
  LambdaGame game(num_tuples, query);
  if (num_tuples <= static_cast<size_t>(opts.exact_up_to))
    return ExactShapley(game, opts.exact_up_to);
  Rng rng(opts.seed);
  return PermutationShapley(game, opts.num_permutations, &rng);
}

SubDatabaseQueryFn MakeRelationQueryFn(
    const Relation& base, TupleId first_tid,
    std::function<double(const Relation&)> query) {
  return [&base, first_tid, query = std::move(query)](
             const std::vector<bool>& keep) {
    Relation sub = base.FilterByTupleId(keep, first_tid);
    return query(sub);
  };
}

}  // namespace xai
