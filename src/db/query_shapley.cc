#include "db/query_shapley.h"

#include <algorithm>
#include <limits>

#include "core/game.h"
#include "feature/shapley.h"
#include "obs/obs.h"

namespace xai {

Result<std::vector<double>> TupleShapley(size_t num_tuples,
                                         const SubDatabaseQueryFn& query,
                                         const QueryShapleyOptions& opts) {
  if (num_tuples == 0)
    return Status::InvalidArgument("TupleShapley: no tuples");
  XAI_OBS_SPAN("query_shapley");
  XAI_OBS_COUNT_N("db.query_shapley.tuples", num_tuples);
  XAI_OBS_TRACE_INSTANT("query_shapley.tuples", num_tuples);
  // Each game evaluation re-runs the query over one sub-database drawn
  // from the answer's lineage — the unit of cost for query-Shapley. The
  // exact and permutation sweeps below both materialize their full
  // coalition sets and drive them through ValueBatch, so lineage
  // evaluations run in fixed-boundary parallel chunks (XAIDB_THREADS);
  // `query` must therefore be safe to call concurrently.
  LambdaGame inner(num_tuples, [&query](const std::vector<bool>& keep) {
    XAI_OBS_COUNT("db.query_shapley.lineage_evals");
    return query(keep);
  });
  // Route through the shared evaluation engine: with a cache attached,
  // identical sub-databases are evaluated once per (cache, fingerprint)
  // lifetime — within this call and across calls. Mixing the player count
  // into the context keeps differently-sized lineages apart even under a
  // caller-default fingerprint of 0.
  const uint64_t context = EvalFingerprintBytes(
      0x71ee5ab1c9cb1dadULL ^ opts.cache_fingerprint, &num_tuples,
      sizeof(num_tuples));
  CachedGame game(inner, context, opts.cache);
  // Exact enumeration materializes all 2^n coalitions (and their value
  // vector) at once; cap the threshold so the 1<<n shift and the
  // allocation stay well inside size_t range no matter what the caller
  // puts in exact_up_to. 2^25 game values ≈ 256 MiB — already past any
  // sensible exact budget.
  constexpr size_t kExactHardCap = 25;
  const size_t exact_up_to = std::min(opts.exact_up_to, kExactHardCap);
  if (num_tuples <= exact_up_to)
    return ExactShapley(game, static_cast<int>(exact_up_to));
  if (opts.num_permutations == 0 ||
      opts.num_permutations >
          static_cast<size_t>(std::numeric_limits<int>::max()))
    return Status::InvalidArgument(
        "TupleShapley: num_permutations out of range");
  Rng rng(opts.seed);
  return PermutationShapley(game, static_cast<int>(opts.num_permutations),
                            &rng);
}

SubDatabaseQueryFn MakeRelationQueryFn(
    const Relation& base, TupleId first_tid,
    std::function<double(const Relation&)> query) {
  return [&base, first_tid, query = std::move(query)](
             const std::vector<bool>& keep) {
    Relation sub = base.FilterByTupleId(keep, first_tid);
    return query(sub);
  };
}

}  // namespace xai
