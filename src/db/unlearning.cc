#include "db/unlearning.h"

namespace xai {

Result<UnlearnResult> UnlearnFromTree(Tree* tree,
                                      const std::vector<double>& x, double y,
                                      double refit_threshold) {
  if (tree->nodes.empty())
    return Status::InvalidArgument("UnlearnFromTree: empty tree");
  UnlearnResult result;
  int node = 0;
  for (;;) {
    TreeNode& nd = tree->nodes[static_cast<size_t>(node)];
    if (nd.cover <= 1.0)
      return Status::FailedPrecondition(
          "UnlearnFromTree: node support exhausted; refit required");
    // Mean downdate: value' = (value * cover - y) / (cover - 1).
    nd.value = (nd.value * nd.cover - y) / (nd.cover - 1.0);
    nd.cover -= 1.0;
    ++result.updated_nodes;
    if (nd.cover < refit_threshold) result.structure_risk = true;
    if (nd.is_leaf()) break;
    node = x[static_cast<size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                              : nd.right;
  }
  return result;
}

Result<UnlearnResult> UnlearnFromForest(std::vector<Tree>* trees,
                                        const std::vector<double>& x,
                                        double y, double refit_threshold) {
  UnlearnResult total;
  for (Tree& t : *trees) {
    XAI_ASSIGN_OR_RETURN(UnlearnResult r,
                         UnlearnFromTree(&t, x, y, refit_threshold));
    total.updated_nodes += r.updated_nodes;
    total.structure_risk = total.structure_risk || r.structure_risk;
  }
  return total;
}

}  // namespace xai
