#ifndef XAIDB_DB_BIAS_EXPLAIN_H_
#define XAIDB_DB_BIAS_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace xai {

/// HypDB-style bias detection in OLAP queries (Salimi et al. 2018, cited
/// by the tutorial's presenter bios and Section 3's "Explanations in
/// Databases"): a GROUP BY average over a treatment column can reverse
/// sign once a confounder is controlled for (Simpson's paradox). This
/// module computes the unadjusted effect and the confounder-adjusted
/// effect and flags reversals — the query-answer analogue of the
/// correlation-vs-causation distinction the causal explainers draw.
struct BiasReport {
  /// avg(outcome | treatment=1) - avg(outcome | treatment=0), unadjusted.
  double unadjusted_effect = 0.0;
  /// The same contrast averaged within confounder strata, weighted by
  /// stratum size (the back-door adjustment over the given confounders).
  double adjusted_effect = 0.0;
  /// Per-stratum detail: (confounder value(s) key, stratum weight,
  /// stratum effect).
  struct Stratum {
    std::vector<double> key;
    double weight = 0.0;
    double effect = 0.0;
  };
  std::vector<Stratum> strata;
  /// True when adjustment flips the sign (Simpson's paradox).
  bool simpson_reversal = false;
};

/// `treatment` must be a 0/1 column; `outcome` numeric; `confounders`
/// categorical-ish columns to stratify on. Strata with only one treatment
/// arm are skipped (and excluded from the weights).
Result<BiasReport> DetectQueryBias(const Relation& r,
                                   const std::string& treatment,
                                   const std::string& outcome,
                                   const std::vector<std::string>& confounders);

}  // namespace xai

#endif  // XAIDB_DB_BIAS_EXPLAIN_H_
