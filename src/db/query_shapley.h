#ifndef XAIDB_DB_QUERY_SHAPLEY_H_
#define XAIDB_DB_QUERY_SHAPLEY_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/eval_engine.h"
#include "relational/relation.h"

namespace xai {

/// Evaluates the query of interest on the sub-database containing exactly
/// the endogenous tuples with keep[i] = true; returns the (numeric) query
/// answer. The caller closes over the database and the query plan.
using SubDatabaseQueryFn = std::function<double(const std::vector<bool>& keep)>;

struct QueryShapleyOptions {
  /// Exact subset enumeration up to this many endogenous tuples. Unsigned
  /// on purpose: tuple counts are sizes, and the old int field let a
  /// negative value sign-convert into a huge threshold that sent
  /// arbitrarily large lineages down the 2^n exact path. The exact sweep
  /// is additionally hard-capped internally (see TupleShapley) so the
  /// coalition materialization can never overflow.
  size_t exact_up_to = 16;
  /// Permutation samples otherwise.
  size_t num_permutations = 200;
  uint64_t seed = 4242;
  /// Memo cache for sub-database query values. Within one call, repeated
  /// coalition masks (permutation prefixes share heavily) collapse to one
  /// lineage evaluation; across calls with the same cache AND
  /// cache_fingerprint, previously evaluated sub-databases are answered
  /// without re-running the query. Null = no memoization (every mask
  /// re-runs the query, exactly as before).
  std::shared_ptr<CoalitionValueCache> cache;
  /// Identifies the (database, query) the values belong to. Callers
  /// sharing one cache across different databases or queries MUST use
  /// distinct fingerprints — the cache cannot see through the closure.
  uint64_t cache_fingerprint = 0;
};

/// Shapley value of tuples in query answering (Livshits, Bertossi,
/// Kimelfeld & Sebag 2021; tutorial Section 3 "Explanations in
/// Databases"): the players are the endogenous base tuples, the game value
/// of a coalition S is the query answer on the sub-database with exactly S
/// present. phi_i quantifies tuple i's contribution to the answer; for
/// fully additive aggregates (SUM with no joins) it degenerates to the
/// tuple's own contribution — a property the tests exploit.
Result<std::vector<double>> TupleShapley(size_t num_tuples,
                                         const SubDatabaseQueryFn& query,
                                         const QueryShapleyOptions& opts = QueryShapleyOptions());

/// Convenience: builds the keep-mask evaluator for an aggregate over a
/// single base relation given a tuple-id offset (ids are assigned
/// sequentially by Relation::Insert).
SubDatabaseQueryFn MakeRelationQueryFn(
    const Relation& base, TupleId first_tid,
    std::function<double(const Relation&)> query);

}  // namespace xai

#endif  // XAIDB_DB_QUERY_SHAPLEY_H_
