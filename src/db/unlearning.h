#ifndef XAIDB_DB_UNLEARNING_H_
#define XAIDB_DB_UNLEARNING_H_

#include <vector>

#include "common/result.h"
#include "model/tree.h"

namespace xai {

/// HedgeCut-style low-latency machine unlearning for decision trees
/// (Schelter, Grafberger & Dunning 2021; tutorial Section 3 "Data-Based
/// Explanations" cites it as the incremental-maintenance route): deleting
/// one training point usually leaves the tree *structure* optimal, so the
/// statistics (covers and mean leaf/node values) along the point's
/// root-to-leaf path are downdated in O(depth) instead of refitting.
/// When a node's support falls below a robustness threshold the deletion
/// is flagged so callers can schedule a refit — HedgeCut's split-
/// robustness idea reduced to its support-based core.
struct UnlearnResult {
  /// Nodes whose statistics were updated (the path).
  size_t updated_nodes = 0;
  /// True when some path node's cover dropped below `refit_threshold`:
  /// the structure may no longer be optimal and a refit is advised.
  bool structure_risk = false;
};

/// Removes (x, y) from the tree's sufficient statistics. The tree must
/// have been fit with plain mean leaf values (FitRegressionTree without
/// hessian weights; classification trees store the positive-class
/// fraction, i.e. the mean of {0,1} labels, so they qualify).
Result<UnlearnResult> UnlearnFromTree(Tree* tree,
                                      const std::vector<double>& x, double y,
                                      double refit_threshold = 10.0);

/// Unlearns the point from every tree of an averaged ensemble (e.g.
/// RandomForest trees — note bagging means the point's weight per tree is
/// approximated as 1, the standard HedgeCut simplification).
Result<UnlearnResult> UnlearnFromForest(std::vector<Tree>* trees,
                                        const std::vector<double>& x,
                                        double y,
                                        double refit_threshold = 10.0);

}  // namespace xai

#endif  // XAIDB_DB_UNLEARNING_H_
