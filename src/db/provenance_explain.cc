#include "db/provenance_explain.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

namespace xai {
namespace {

/// Minimum hitting set over `sets` (each must be hit by >= 1 chosen
/// element). Exact branch-and-bound for small instances; greedy fallback.
std::vector<TupleId> MinimumHittingSet(
    const std::vector<std::vector<TupleId>>& sets, size_t exact_limit) {
  if (sets.empty()) return {};

  // Greedy solution (also the upper bound for the exact search): pick the
  // element hitting the most unhit sets.
  auto greedy = [&]() {
    std::vector<TupleId> chosen;
    std::vector<bool> hit(sets.size(), false);
    for (;;) {
      std::map<TupleId, size_t> gain;
      bool any_unhit = false;
      for (size_t s = 0; s < sets.size(); ++s) {
        if (hit[s]) continue;
        any_unhit = true;
        for (TupleId t : sets[s]) ++gain[t];
      }
      if (!any_unhit) break;
      TupleId best = 0;
      size_t best_gain = 0;
      for (const auto& [t, g] : gain) {
        if (g > best_gain) {
          best_gain = g;
          best = t;
        }
      }
      chosen.push_back(best);
      for (size_t s = 0; s < sets.size(); ++s) {
        if (hit[s]) continue;
        if (std::find(sets[s].begin(), sets[s].end(), best) != sets[s].end())
          hit[s] = true;
      }
    }
    return chosen;
  };

  std::vector<TupleId> best = greedy();
  if (sets.size() > exact_limit) return best;

  // Exact DFS: repeatedly branch on the elements of the first unhit set.
  std::vector<TupleId> current;
  std::function<void(size_t)> dfs = [&](size_t /*depth*/) {
    if (current.size() + 1 >= best.size() + 1 &&
        current.size() >= best.size())
      return;  // Prune: cannot beat the incumbent.
    // First unhit set.
    const std::vector<TupleId>* unhit = nullptr;
    for (const auto& s : sets) {
      bool is_hit = false;
      for (TupleId t : s)
        if (std::find(current.begin(), current.end(), t) != current.end()) {
          is_hit = true;
          break;
        }
      if (!is_hit) {
        unhit = &s;
        break;
      }
    }
    if (!unhit) {
      if (current.size() < best.size()) best = current;
      return;
    }
    for (TupleId t : *unhit) {
      current.push_back(t);
      dfs(current.size());
      current.pop_back();
    }
  };
  dfs(0);
  return best;
}

}  // namespace

std::vector<TupleResponsibility> ComputeResponsibilities(
    const WhyProvenance& provenance, size_t exact_limit) {
  std::set<TupleId> all;
  for (const Witness& w : provenance) all.insert(w.begin(), w.end());

  std::vector<TupleResponsibility> out;
  for (TupleId t : all) {
    // Witnesses that survive without t must all be killed by the
    // contingency; witnesses containing t die with t.
    std::vector<std::vector<TupleId>> to_kill;
    bool in_some_witness = false;
    for (const Witness& w : provenance) {
      if (std::find(w.begin(), w.end(), t) != w.end()) {
        in_some_witness = true;
      } else {
        to_kill.push_back(w);
      }
    }
    TupleResponsibility r;
    r.tuple = t;
    if (!in_some_witness) {
      r.responsibility = 0.0;
    } else {
      // The contingency must not delete t itself; witnesses never contain
      // t here by construction, so any hitting set is valid.
      r.contingency = MinimumHittingSet(to_kill, exact_limit);
      r.responsibility =
          1.0 / (1.0 + static_cast<double>(r.contingency.size()));
    }
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const TupleResponsibility& a, const TupleResponsibility& b) {
              return a.responsibility > b.responsibility;
            });
  return out;
}

std::vector<TupleSensitivity> RankByDeletionImpact(
    const std::vector<TupleId>& lineage,
    const std::function<double(const std::vector<TupleId>& deleted)>&
        reevaluate) {
  const double baseline = reevaluate({});
  std::vector<TupleSensitivity> out;
  out.reserve(lineage.size());
  for (TupleId t : lineage) {
    TupleSensitivity s;
    s.tuple = t;
    s.delta = reevaluate({t}) - baseline;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const TupleSensitivity& a, const TupleSensitivity& b) {
              return std::fabs(a.delta) > std::fabs(b.delta);
            });
  return out;
}

}  // namespace xai
