#include "valuation/cooks_distance.h"

#include <cmath>

#include "math/linalg.h"

namespace xai {

Result<CooksDistanceReport> ComputeCooksDistance(
    const LinearRegression& model, const Dataset& ds) {
  const size_t n = ds.n();
  const size_t d = ds.d();
  if (n <= d + 1)
    return Status::InvalidArgument("CooksDistance: need n > d + 1");

  // Augmented design and its inverse Gram.
  Matrix gram(d + 1, d + 1);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> xa = ds.row(i);
    xa.push_back(1.0);
    for (size_t a = 0; a <= d; ++a)
      for (size_t b = 0; b <= d; ++b) gram(a, b) += xa[a] * xa[b];
  }
  for (size_t a = 0; a <= d; ++a) gram(a, a) += 1e-10;  // Numeric guard.
  XAI_ASSIGN_OR_RETURN(Matrix gram_inv, InverseSpd(gram));

  CooksDistanceReport report;
  report.leverage.resize(n);
  report.loo_residual.resize(n);
  report.cooks_distance.resize(n);
  report.param_change.resize(n);

  // Residuals and s^2 (p = d+1 parameters).
  std::vector<double> residual(n);
  double sse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    residual[i] = ds.y()[i] - model.Predict(ds.row(i));
    sse += residual[i] * residual[i];
  }
  const double p = static_cast<double>(d + 1);
  const double s2 = sse / (static_cast<double>(n) - p);

  for (size_t i = 0; i < n; ++i) {
    std::vector<double> xa = ds.row(i);
    xa.push_back(1.0);
    const std::vector<double> ginv_x = gram_inv * xa;
    const double h = Dot(xa, ginv_x);
    report.leverage[i] = h;
    const double denom = std::max(1.0 - h, 1e-12);
    report.loo_residual[i] = residual[i] / denom;
    report.cooks_distance[i] =
        residual[i] * residual[i] * h / (p * s2 * denom * denom);
    // theta_(i) - theta = -(X^T X)^{-1} x_i e_i / (1 - h_i).
    report.param_change[i] = Scale(ginv_x, -residual[i] / denom);
  }
  return report;
}

}  // namespace xai
