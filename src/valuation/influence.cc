#include "valuation/influence.h"

#include <cmath>

#include "math/linalg.h"
#include "math/stats.h"

namespace xai {

Result<InfluenceCalculator> InfluenceCalculator::Create(
    const LogisticRegression& model, const Dataset& train,
    const InfluenceOptions& opts) {
  InfluenceCalculator calc(model, train, opts);
  calc.hessian_ = model.ObjectiveHessian(train.x());
  if (opts.solver == HessianSolver::kCholesky) {
    XAI_ASSIGN_OR_RETURN(calc.hessian_inv_, InverseSpd(calc.hessian_));
  }
  return calc;
}

std::vector<double> InfluenceCalculator::InverseHvp(
    const std::vector<double>& v) const {
  if (opts_.solver == HessianSolver::kCholesky) return hessian_inv_ * v;
  return ConjugateGradient(hessian_, v, opts_.cg_max_iter, opts_.cg_tol);
}

std::vector<double> InfluenceCalculator::InfluenceOnValidationLoss(
    const Dataset& validation) const {
  const size_t d1 = model_.theta().size();
  // grad of total validation loss (mean CE) at theta-hat.
  std::vector<double> grad_val(d1, 0.0);
  for (size_t i = 0; i < validation.n(); ++i) {
    std::vector<double> g =
        model_.SampleGradient(validation.row(i), validation.y()[i]);
    AxpyInPlace(&grad_val, 1.0 / static_cast<double>(validation.n()), g);
  }
  const std::vector<double> s = InverseHvp(grad_val);

  const double inv_n = 1.0 / static_cast<double>(train_.n());
  std::vector<double> out(train_.n());
  for (size_t i = 0; i < train_.n(); ++i) {
    std::vector<double> gi =
        model_.SampleGradient(train_.row(i), train_.y()[i]);
    out[i] = Dot(s, gi) * inv_n;
  }
  return out;
}

std::vector<double> InfluenceCalculator::InfluenceOnPrediction(
    const std::vector<double>& x) const {
  // d margin / d theta = [x; 1].
  std::vector<double> gx = x;
  gx.push_back(1.0);
  const std::vector<double> s = InverseHvp(gx);
  const double inv_n = 1.0 / static_cast<double>(train_.n());
  std::vector<double> out(train_.n());
  for (size_t i = 0; i < train_.n(); ++i) {
    std::vector<double> gi =
        model_.SampleGradient(train_.row(i), train_.y()[i]);
    out[i] = Dot(s, gi) * inv_n;
  }
  return out;
}

std::vector<double> InfluenceCalculator::GroupParamChangeFirstOrder(
    const std::vector<size_t>& group) const {
  const size_t d1 = model_.theta().size();
  std::vector<double> g_sum(d1, 0.0);
  for (size_t i : group) {
    std::vector<double> gi =
        model_.SampleGradient(train_.row(i), train_.y()[i]);
    AxpyInPlace(&g_sum, 1.0, gi);
  }
  std::vector<double> delta = InverseHvp(g_sum);
  for (double& v : delta) v /= static_cast<double>(train_.n());
  return delta;
}

Result<std::vector<double>> InfluenceCalculator::GroupParamChangeSecondOrder(
    const std::vector<size_t>& group) const {
  const size_t n = train_.n();
  const size_t u = group.size();
  if (u >= n)
    return Status::InvalidArgument("GroupInfluence: group too large");
  const size_t d1 = model_.theta().size();
  const size_t d = d1 - 1;
  const std::vector<double>& theta = model_.theta();
  const double lambda = model_.lambda();

  // Gradient of the reduced objective at theta-hat:
  //   g' = -(u/(n-u)) * lambda * theta - (1/(n-u)) * sum_{i in U} grad_i
  // (uses stationarity of the full objective at theta-hat).
  std::vector<double> g_sum(d1, 0.0);
  std::vector<bool> in_group(n, false);
  for (size_t i : group) {
    in_group[i] = true;
    std::vector<double> gi =
        model_.SampleGradient(train_.row(i), train_.y()[i]);
    AxpyInPlace(&g_sum, 1.0, gi);
  }
  const double nu = static_cast<double>(n - u);
  std::vector<double> g_reduced(d1);
  for (size_t a = 0; a < d1; ++a) {
    g_reduced[a] = -(static_cast<double>(u) / nu) * lambda * theta[a] -
                   g_sum[a] / nu;
  }

  // Hessian of the reduced objective: mean of per-sample Hessians over the
  // kept points, plus the regularizer.
  Matrix h(d1, d1);
  for (size_t i = 0; i < n; ++i) {
    if (in_group[i]) continue;
    const std::vector<double> xi = train_.row(i);
    double z = theta[d];
    for (size_t j = 0; j < d; ++j) z += theta[j] * xi[j];
    const double p = Sigmoid(z);
    const double w = std::max(p * (1.0 - p), 1e-10) / nu;
    for (size_t a = 0; a < d; ++a) {
      const double wxa = w * xi[a];
      double* hrow = h.RowPtr(a);
      for (size_t b = 0; b < d; ++b) hrow[b] += wxa * xi[b];
      h(a, d) += wxa;
      h(d, a) += wxa;
    }
    h(d, d) += w;
  }
  for (size_t a = 0; a < d1; ++a) h(a, a) += lambda;

  // One Newton step: delta = -H'^{-1} g'  (delta = theta_new - theta_hat).
  XAI_ASSIGN_OR_RETURN(std::vector<double> step, SolveSpd(h, g_reduced));
  for (double& v : step) v = -v;
  return step;
}

Result<std::vector<double>> InfluenceCalculator::GroupParamChangeRetrain(
    const std::vector<size_t>& group) const {
  Dataset reduced = train_.RemoveRows(group);
  LogisticRegression::Options o;
  o.lambda = model_.lambda();
  XAI_ASSIGN_OR_RETURN(LogisticRegression refit,
                       LogisticRegression::Fit(reduced, o));
  std::vector<double> delta(refit.theta().size());
  for (size_t a = 0; a < delta.size(); ++a)
    delta[a] = refit.theta()[a] - model_.theta()[a];
  return delta;
}

}  // namespace xai
