#include "valuation/distributional_shapley.h"

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "math/stats.h"
#include "obs/obs.h"

namespace xai {

DistributionalValue DistributionalShapleyValue(
    const Dataset& pool, const Dataset& points, size_t point_index,
    const TrainEvalFn& train_eval,
    const DistributionalShapleyOptions& opts) {
  Rng rng(opts.seed + 7919 * point_index);
  OnlineMoments moments;
  const size_t m1 = opts.cardinality > 0 ? opts.cardinality - 1 : 0;
  for (int draw = 0; draw < opts.num_draws; ++draw) {
    // S ~ D^(m-1): sample with replacement from the pool.
    std::vector<size_t> idx(m1);
    for (size_t k = 0; k < m1; ++k)
      idx[k] = static_cast<size_t>(rng.NextInt(pool.n()));
    Dataset coalition = pool.Select(idx);
    const double without = train_eval(coalition);
    // S ∪ {z}.
    Matrix with_x = coalition.x();
    with_x.AppendRow(points.row(point_index));
    std::vector<double> with_y = coalition.y();
    with_y.push_back(points.y()[point_index]);
    Dataset with(coalition.schema(), std::move(with_x), std::move(with_y));
    moments.Add(train_eval(with) - without);
  }
  DistributionalValue out;
  out.value = moments.mean();
  out.stderr_ = moments.count() > 1
                    ? std::sqrt(moments.variance() /
                                static_cast<double>(moments.count()))
                    : 0.0;
  return out;
}

std::vector<DistributionalValue> DistributionalShapleyValues(
    const Dataset& pool, const Dataset& points, const TrainEvalFn& train_eval,
    const DistributionalShapleyOptions& opts) {
  std::vector<DistributionalValue> out(points.n());
  // Each point's estimate runs from its own counter-derived stream
  // (opts.seed + 7919 * index), so the parallel sweep is bit-identical to
  // the serial loop for any thread count. train_eval must be thread-safe
  // (the built-in model fits are pure functions of their inputs).
  XAI_OBS_GAUGE_SET("parallel.threads", GlobalThreadCount());
  GlobalPool().ParallelFor(0, points.n(), 1, [&](size_t i) {
    out[i] = DistributionalShapleyValue(pool, points, i, train_eval, opts);
  });
  return out;
}

}  // namespace xai
