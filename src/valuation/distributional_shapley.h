#ifndef XAIDB_VALUATION_DISTRIBUTIONAL_SHAPLEY_H_
#define XAIDB_VALUATION_DISTRIBUTIONAL_SHAPLEY_H_

#include <vector>

#include "common/result.h"
#include "valuation/data_valuation.h"

namespace xai {

/// Distributional Shapley values (Ghorbani, Kim & Zou 2020; Kwon, Rivas &
/// Zou 2021), tutorial Section 2.3.1: Data Shapley values are tied to one
/// fixed dataset; the *distributional* value of a point z at cardinality m
/// is
///   nu(z; m) = E_{S ~ D^(m-1)} [ U(S ∪ {z}) - U(S) ],
/// the expected marginal contribution to a fresh size-(m-1) sample from
/// the underlying distribution D, so values transfer to new datasets of
/// the same provenance. Estimated by Monte-Carlo with `pool` standing in
/// for D (sampling with replacement).
struct DistributionalShapleyOptions {
  /// Coalition cardinality m; draws use m-1 pool points plus z.
  size_t cardinality = 50;
  /// Monte-Carlo draws per evaluated point.
  int num_draws = 30;
  uint64_t seed = 515;
};

struct DistributionalValue {
  double value = 0.0;
  /// Monte-Carlo standard error of the estimate.
  double stderr_ = 0.0;
};

/// Distributional value of one point (given by its row in `points`).
/// `train_eval` must accept any dataset drawn from the pool.
DistributionalValue DistributionalShapleyValue(
    const Dataset& pool, const Dataset& points, size_t point_index,
    const TrainEvalFn& train_eval,
    const DistributionalShapleyOptions& opts = DistributionalShapleyOptions());

/// Values of all `points` rows against the same pool and options.
std::vector<DistributionalValue> DistributionalShapleyValues(
    const Dataset& pool, const Dataset& points, const TrainEvalFn& train_eval,
    const DistributionalShapleyOptions& opts = DistributionalShapleyOptions());

}  // namespace xai

#endif  // XAIDB_VALUATION_DISTRIBUTIONAL_SHAPLEY_H_
