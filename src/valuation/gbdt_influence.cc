#include "valuation/gbdt_influence.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"

namespace xai {

Result<GbdtLeafInfluence> GbdtLeafInfluence::Create(
    const GradientBoostedTrees& model, const Dataset& train) {
  const size_t n = train.n();
  if (n == 0) return Status::InvalidArgument("GbdtInfluence: empty train");
  GbdtLeafInfluence infl(model, n);
  const auto& trees = model.trees();
  infl.sample_leaf_.resize(trees.size());
  infl.leaf_g_.resize(trees.size());
  infl.leaf_h_.resize(trees.size());
  infl.sample_g_.resize(trees.size());
  infl.sample_h_.resize(trees.size());

  // Replay boosting: the trees are fixed, so tracking margins recovers the
  // per-round gradients/hessians each leaf aggregated at fit time.
  std::vector<double> margin(n, model.base_score());
  const bool logistic =
      model.loss() == GradientBoostedTrees::Loss::kLogistic;
  for (size_t t = 0; t < trees.size(); ++t) {
    const Tree& tree = trees[t];
    infl.sample_leaf_[t].resize(n);
    infl.leaf_g_[t].assign(tree.nodes.size(), 0.0);
    infl.leaf_h_[t].assign(tree.nodes.size(), 0.0);
    infl.sample_g_[t].resize(n);
    infl.sample_h_[t].resize(n);
    for (size_t i = 0; i < n; ++i) {
      const std::vector<double> xi = train.row(i);
      double g;
      double h;
      if (logistic) {
        const double p = Sigmoid(margin[i]);
        g = train.y()[i] - p;  // Negative gradient (residual).
        h = std::max(p * (1.0 - p), 1e-6);
      } else {
        g = train.y()[i] - margin[i];
        h = 1.0;
      }
      const int leaf = tree.LeafIndex(xi);
      infl.sample_leaf_[t][i] = leaf;
      infl.leaf_g_[t][static_cast<size_t>(leaf)] += g;
      infl.leaf_h_[t][static_cast<size_t>(leaf)] += h;
      infl.sample_g_[t][i] = g;
      infl.sample_h_[t][i] = h;
      margin[i] += model.learning_rate() * tree.Predict(xi);
    }
  }
  return infl;
}

std::vector<double> GbdtLeafInfluence::InfluenceOnPrediction(
    const std::vector<double>& x) const {
  const auto& trees = model_.trees();
  std::vector<double> out(n_, 0.0);
  for (size_t t = 0; t < trees.size(); ++t) {
    const int test_leaf = trees[t].LeafIndex(x);
    const double g = leaf_g_[t][static_cast<size_t>(test_leaf)];
    const double h = leaf_h_[t][static_cast<size_t>(test_leaf)];
    const double value = h > 1e-12 ? g / h : 0.0;
    for (size_t i = 0; i < n_; ++i) {
      if (sample_leaf_[t][i] != test_leaf) continue;
      const double g2 = g - sample_g_[t][i];
      const double h2 = h - sample_h_[t][i];
      const double new_value = h2 > 1e-12 ? g2 / h2 : 0.0;
      out[i] += model_.learning_rate() * (new_value - value);
    }
  }
  return out;
}

std::vector<double> GbdtLeafInfluence::InfluenceOnValidationLoss(
    const Dataset& validation) const {
  std::vector<double> out(n_, 0.0);
  const bool logistic =
      model_.loss() == GradientBoostedTrees::Loss::kLogistic;
  for (size_t v = 0; v < validation.n(); ++v) {
    const std::vector<double> xv = validation.row(v);
    const std::vector<double> dm = InfluenceOnPrediction(xv);
    double dldm;  // d loss / d margin at the current prediction.
    if (logistic) {
      const double p = Sigmoid(model_.PredictMargin(xv));
      dldm = p - validation.y()[v];
    } else {
      dldm = 2.0 * (model_.PredictMargin(xv) - validation.y()[v]);
    }
    for (size_t i = 0; i < n_; ++i)
      out[i] += dldm * dm[i] / static_cast<double>(validation.n());
  }
  return out;
}

}  // namespace xai
