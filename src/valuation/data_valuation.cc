#include "valuation/data_valuation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace xai {

std::vector<double> LeaveOneOutValues(const Dataset& train,
                                      const TrainEvalFn& train_eval) {
  const size_t n = train.n();
  const double full = train_eval(train);
  std::vector<double> values(n, 0.0);
  for (size_t i = 0; i < n; ++i)
    values[i] = full - train_eval(train.RemoveRow(i));
  return values;
}

std::vector<double> TmcDataShapley(const Dataset& train,
                                   const TrainEvalFn& train_eval,
                                   const DataShapleyOptions& opts) {
  const size_t n = train.n();
  Rng rng(opts.seed);
  const double full_perf = train_eval(train);
  std::vector<double> values(n, 0.0);

  for (int t = 0; t < opts.num_permutations; ++t) {
    std::vector<size_t> perm = rng.Permutation(n);
    double prev_perf = opts.empty_value;
    std::vector<size_t> prefix;
    prefix.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      prefix.push_back(perm[k]);
      double cur_perf;
      if (std::fabs(full_perf - prev_perf) < opts.truncation_tol) {
        // Truncation: remaining marginals are ~0.
        cur_perf = prev_perf;
      } else {
        cur_perf = train_eval(train.Select(prefix));
      }
      values[perm[k]] += cur_perf - prev_perf;
      prev_perf = cur_perf;
    }
  }
  for (double& v : values) v /= static_cast<double>(opts.num_permutations);
  return values;
}

std::vector<double> ExactKnnShapley(const Dataset& train,
                                    const Dataset& validation, int k) {
  const size_t n = train.n();
  std::vector<double> values(n, 0.0);
  const double kk = static_cast<double>(k);

  std::vector<double> dist(n);
  std::vector<size_t> order(n);
  std::vector<double> s(n);
  for (size_t v = 0; v < validation.n(); ++v) {
    const std::vector<double> xv = validation.row(v);
    const double yv = validation.y()[v];
    for (size_t i = 0; i < n; ++i) {
      const double* r = train.x().RowPtr(i);
      double d2 = 0.0;
      for (size_t j = 0; j < train.d(); ++j) {
        const double dd = r[j] - xv[j];
        d2 += dd * dd;
      }
      dist[i] = d2;
    }
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return dist[a] < dist[b]; });

    // Jia et al. recurrence, farthest to nearest (1-indexed positions).
    auto match = [&](size_t pos) {
      return (train.y()[order[pos]] >= 0.5) == (yv >= 0.5) ? 1.0 : 0.0;
    };
    s[order[n - 1]] = match(n - 1) / static_cast<double>(n);
    for (size_t pos = n - 1; pos-- > 0;) {
      const double i1 = static_cast<double>(pos + 1);  // 1-based index.
      s[order[pos]] =
          s[order[pos + 1]] +
          (match(pos) - match(pos + 1)) / kk *
              std::min(kk, i1) / i1;
    }
    for (size_t i = 0; i < n; ++i) values[i] += s[i];
  }
  for (double& v : values) v /= static_cast<double>(validation.n());
  return values;
}

double CorruptionDetectionRate(const std::vector<double>& values,
                               const std::vector<size_t>& corrupted,
                               size_t inspect_count) {
  if (corrupted.empty()) return 0.0;
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  inspect_count = std::min(inspect_count, order.size());
  const std::set<size_t> truth(corrupted.begin(), corrupted.end());
  size_t found = 0;
  for (size_t i = 0; i < inspect_count; ++i)
    if (truth.count(order[i])) ++found;
  return static_cast<double>(found) / static_cast<double>(truth.size());
}

}  // namespace xai
