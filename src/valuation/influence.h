#ifndef XAIDB_VALUATION_INFLUENCE_H_
#define XAIDB_VALUATION_INFLUENCE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "model/logistic_regression.h"

namespace xai {

enum class HessianSolver {
  kCholesky,  // Exact dense factorization (d small).
  kConjugateGradient,  // Iterative inverse-HVP (Koh & Liang's recipe).
};

struct InfluenceOptions {
  HessianSolver solver = HessianSolver::kCholesky;
  int cg_max_iter = 200;
  double cg_tol = 1e-10;
};

/// Influence functions for L2-regularized logistic regression (Koh & Liang
/// 2017; Cook & Weisberg 1980), tutorial Section 2.3.2.
///
/// First-order effect of *removing* training point i on:
///  * the parameters:  delta_theta_i ≈ H^{-1} grad_i / n
///  * a scalar functional L(theta): delta_L_i ≈ grad_L^T H^{-1} grad_i / n
/// where H is the Hessian of the training objective at the optimum. A
/// negative delta on validation loss marks a *harmful* point (removal
/// improves the model) — the signal used to rank corrupted labels.
class InfluenceCalculator {
 public:
  /// `model` must be fit on `train` (the Hessian is evaluated there).
  static Result<InfluenceCalculator> Create(const LogisticRegression& model,
                                            const Dataset& train,
                                            const InfluenceOptions& opts = InfluenceOptions());

  /// delta (first-order) of total validation loss when removing each
  /// training point (vector of size train.n()).
  std::vector<double> InfluenceOnValidationLoss(const Dataset& validation) const;

  /// delta of the *prediction margin* on a single test input when
  /// removing each training point.
  std::vector<double> InfluenceOnPrediction(const std::vector<double>& x) const;

  /// First-order parameter change from removing the rows in `group`
  /// (sum of individual influences).
  std::vector<double> GroupParamChangeFirstOrder(
      const std::vector<size_t>& group) const;

  /// Second-order-style group effect (Basu et al. 2020): one Newton step
  /// of the objective *without* the group, started at the full optimum —
  /// uses the group-corrected Hessian, capturing intra-group correlation
  /// that first-order addition misses.
  Result<std::vector<double>> GroupParamChangeSecondOrder(
      const std::vector<size_t>& group) const;

  /// Exact parameter change via retraining without `group` (ground truth
  /// for E6).
  Result<std::vector<double>> GroupParamChangeRetrain(
      const std::vector<size_t>& group) const;

  /// H^{-1} v with the configured solver.
  std::vector<double> InverseHvp(const std::vector<double>& v) const;

 private:
  InfluenceCalculator(const LogisticRegression& model, const Dataset& train,
                      const InfluenceOptions& opts)
      : model_(model), train_(train), opts_(opts) {}

  const LogisticRegression& model_;
  const Dataset& train_;
  InfluenceOptions opts_;
  Matrix hessian_;
  Matrix hessian_inv_;  // Only with kCholesky.
};

}  // namespace xai

#endif  // XAIDB_VALUATION_INFLUENCE_H_
