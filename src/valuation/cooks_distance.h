#ifndef XAIDB_VALUATION_COOKS_DISTANCE_H_
#define XAIDB_VALUATION_COOKS_DISTANCE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "model/linear_regression.h"

namespace xai {

/// Cook & Weisberg (1980) — the tutorial's citation [11] and the origin of
/// influence functions: for least squares, the effect of deleting point i
/// is available in *closed form* through the hat matrix, no approximation
/// and no retraining:
///   h_i   = x~_i^T (X~^T X~)^{-1} x~_i              (leverage)
///   e_(i) = e_i / (1 - h_i)                          (LOO residual)
///   delta_theta_i = -(X~^T X~)^{-1} x~_i e_(i)       (exact param change)
///   D_i   = e_i^2 h_i / (p s^2 (1 - h_i)^2)          (Cook's distance)
/// This is the exact counterpart the first-order influence functions of
/// Section 2.3.2 approximate for non-linear losses.
struct CooksDistanceReport {
  std::vector<double> leverage;        // h_i in [0, 1].
  std::vector<double> loo_residual;    // e_(i).
  std::vector<double> cooks_distance;  // D_i >= 0.
  /// Exact parameter change [w; b] caused by deleting point i.
  std::vector<std::vector<double>> param_change;
};

/// `model` must be an (effectively unregularized) least-squares fit of
/// `ds`; pass lambda <= 1e-8 fits for exactness.
Result<CooksDistanceReport> ComputeCooksDistance(const LinearRegression& model,
                                                 const Dataset& ds);

}  // namespace xai

#endif  // XAIDB_VALUATION_COOKS_DISTANCE_H_
