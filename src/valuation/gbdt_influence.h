#ifndef XAIDB_VALUATION_GBDT_INFLUENCE_H_
#define XAIDB_VALUATION_GBDT_INFLUENCE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "model/gbdt.h"

namespace xai {

/// LeafRefit-style influence for gradient boosted trees (Sharchilev et al.
/// 2018), tutorial Section 2.3.2: influence functions do not apply to
/// non-parametric trees, so the tree *structure is frozen* and only leaf
/// values are differentiated w.r.t. training-point weights. Removing point
/// i changes each leaf it reached from G/H to (G-g_i)/(H-h_i); the change
/// in a test prediction is the sum of those deltas over trees whose test
/// leaf coincides with i's leaf (first-order: residual drift across
/// boosting rounds is ignored, as in the paper's fast approximation).
class GbdtLeafInfluence {
 public:
  /// Replays the boosting run of `model` on its training data to recover
  /// per-leaf gradient/hessian sums and per-sample leaf assignments.
  static Result<GbdtLeafInfluence> Create(const GradientBoostedTrees& model,
                                          const Dataset& train);

  /// Margin change on `x` caused by removing training point i, for all i.
  std::vector<double> InfluenceOnPrediction(const std::vector<double>& x) const;

  /// Mean change of CE validation loss (logistic) / squared loss
  /// caused by removing each training point (first-order through the
  /// margin deltas).
  std::vector<double> InfluenceOnValidationLoss(const Dataset& validation) const;

 private:
  GbdtLeafInfluence(const GradientBoostedTrees& model, size_t n)
      : model_(model), n_(n) {}

  const GradientBoostedTrees& model_;
  size_t n_;
  // Per tree: leaf index of each training sample.
  std::vector<std::vector<int>> sample_leaf_;
  // Per tree: per node (leaves used) sums of gradients and hessians.
  std::vector<std::vector<double>> leaf_g_;
  std::vector<std::vector<double>> leaf_h_;
  // Per tree, per sample: its gradient/hessian at that round.
  std::vector<std::vector<double>> sample_g_;
  std::vector<std::vector<double>> sample_h_;
};

}  // namespace xai

#endif  // XAIDB_VALUATION_GBDT_INFLUENCE_H_
