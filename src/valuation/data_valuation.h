#ifndef XAIDB_VALUATION_DATA_VALUATION_H_
#define XAIDB_VALUATION_DATA_VALUATION_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace xai {

/// Trains a model on `train` and returns a validation performance score
/// (higher = better); the validation set is closed over by the caller.
/// The abstraction all retraining-based data-valuation methods share.
using TrainEvalFn = std::function<double(const Dataset& train)>;

/// Leave-one-out values: value_i = perf(full) - perf(full \ {i}).
/// n retrainings — the naive baseline tutorial Section 2.3.2 starts from.
std::vector<double> LeaveOneOutValues(const Dataset& train,
                                      const TrainEvalFn& train_eval);

struct DataShapleyOptions {
  /// Monte-Carlo permutations (each costs up to n retrainings before
  /// truncation).
  int num_permutations = 30;
  /// Truncation: stop scanning a permutation once the running performance
  /// is within this tolerance of the full-data performance ("TMC").
  double truncation_tol = 0.005;
  /// Performance assigned to the empty training set.
  double empty_value = 0.5;
  uint64_t seed = 808;
};

/// Truncated Monte-Carlo Data Shapley (Ghorbani & Zou 2019), tutorial
/// Section 2.3.1: the Shapley value of each training point in the game
/// whose players are training points and whose value is validation
/// performance of the model trained on the coalition.
std::vector<double> TmcDataShapley(const Dataset& train,
                                   const TrainEvalFn& train_eval,
                                   const DataShapleyOptions& opts = DataShapleyOptions());

/// Exact KNN-Shapley (Jia et al. 2019): for a K-NN classifier the Shapley
/// value of every training point w.r.t. the validation accuracy admits a
/// closed-form O(n log n) recurrence per validation point — the
/// model-specific efficiency result experiment E11 reproduces.
///
/// Returns one value per training row; values sum (over train points) to
/// accuracy(validation) - 1/num_classes ... (efficiency up to the empty-set
/// convention; the tests check pairwise consistency against TMC instead).
std::vector<double> ExactKnnShapley(const Dataset& train,
                                    const Dataset& validation, int k);

/// Ranking quality of valuation scores at detecting corrupted points:
/// fraction of the true corrupted indices found among the `inspect_count`
/// lowest-valued points (the standard noisy-label detection protocol of
/// the Data Shapley paper).
double CorruptionDetectionRate(const std::vector<double>& values,
                               const std::vector<size_t>& corrupted,
                               size_t inspect_count);

}  // namespace xai

#endif  // XAIDB_VALUATION_DATA_VALUATION_H_
