#include <gtest/gtest.h>

#include <cmath>

#include "core/explanation.h"
#include "core/perturb.h"
#include "data/synthetic.h"
#include "feature/lime.h"
#include "feature/qii.h"
#include "feature/surrogate.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"

namespace xai {
namespace {

TEST(Explanation, TopFeaturesAndReconstruction) {
  FeatureAttribution attr;
  attr.feature_names = {"a", "b", "c"};
  attr.values = {0.1, -2.0, 1.0};
  attr.base_value = 0.5;
  attr.prediction = -0.4;
  auto top = attr.TopFeatures(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_NEAR(attr.Reconstruction(), -0.4, 1e-12);
  EXPECT_NE(attr.ToString().find("b"), std::string::npos);
}

TEST(Explanation, RulePredicatesAndMatching) {
  Schema schema({FeatureSpec::Numeric("age"),
                 FeatureSpec::Categorical("sex", {"f", "m"})});
  RuleExplanation rule;
  rule.predicates.push_back(
      {.feature = 0, .is_categorical = false, .lower = 18, .upper = 65});
  rule.predicates.push_back({.feature = 1, .is_categorical = true,
                             .lower = 0, .upper = 0, .category = 1});
  rule.outcome = 1.0;
  EXPECT_TRUE(rule.Matches({30, 1}));
  EXPECT_FALSE(rule.Matches({30, 0}));
  EXPECT_FALSE(rule.Matches({80, 1}));
  const std::string s = rule.ToString(schema);
  EXPECT_NE(s.find("age"), std::string::npos);
  EXPECT_NE(s.find("sex = m"), std::string::npos);
}

TEST(Perturber, ConditionalClampsFixedFeatures) {
  Dataset ds = MakeLoanDataset(300);
  const std::vector<double> x = ds.row(0);
  TabularPerturber perturber(ds, x);
  Rng rng(3);
  std::vector<bool> fixed(ds.d(), false);
  fixed[1] = true;
  fixed[6] = true;
  for (int i = 0; i < 50; ++i) {
    auto s = perturber.DrawConditional(fixed, &rng);
    EXPECT_DOUBLE_EQ(s.x[1], x[1]);
    EXPECT_DOUBLE_EQ(s.x[6], x[6]);
    EXPECT_EQ(s.z[1], 1);
    // Categorical samples must be valid codes.
    const auto code = static_cast<size_t>(std::lround(s.x[5]));
    EXPECT_LT(code, ds.schema().feature(5).cardinality());
  }
}

TEST(Lime, RecoversLinearModelStructure) {
  // On a (standardized) linear model, LIME coefficients should rank
  // features like |w| and match signs.
  Dataset ds = MakeGaussianDataset(2000, {.seed = 7, .dims = 4});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  LimeExplainer lime(*model, ds, {.num_samples = 4000, .seed = 5});
  auto attr = lime.Explain(ds.row(0));
  ASSERT_TRUE(attr.ok());
  // Ground-truth weights decay ~ 1/(j+1): LIME importance should too.
  EXPECT_GT(attr->values[0], attr->values[2]);
  EXPECT_GT(attr->values[0], attr->values[3]);
  EXPECT_GT(attr->values[0], 0.0);
  // The binary interpretable representation discards magnitudes, capping
  // the local R^2 well below 1 even for a linear black box.
  EXPECT_GT(lime.last_local_r2(), 0.02);
}

TEST(Lime, FeatureSelectionZeroesTail) {
  Dataset ds = MakeGaussianDataset(500, {.seed = 9, .dims = 6});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  LimeExplainer lime(*model, ds, {.num_samples = 800, .num_features = 2});
  auto attr = lime.Explain(ds.row(3));
  ASSERT_TRUE(attr.ok());
  size_t nonzero = 0;
  for (double v : attr->values)
    if (v != 0.0) ++nonzero;
  EXPECT_EQ(nonzero, 2u);
}

TEST(Lime, SeedsChangeSamplingInstability) {
  // Different seeds -> different attributions (the unreliability E3
  // quantifies); same seed -> identical.
  Dataset ds = MakeLoanDataset(600);
  auto model = GradientBoostedTrees::Fit(ds);
  ASSERT_TRUE(model.ok());
  LimeExplainer a(*model, ds, {.num_samples = 200, .seed = 1});
  LimeExplainer b(*model, ds, {.num_samples = 200, .seed = 1});
  LimeExplainer c(*model, ds, {.num_samples = 200, .seed = 2});
  auto attr_a = a.Explain(ds.row(0));
  auto attr_b = b.Explain(ds.row(0));
  auto attr_c = c.Explain(ds.row(0));
  ASSERT_TRUE(attr_a.ok() && attr_b.ok() && attr_c.ok());
  for (size_t j = 0; j < ds.d(); ++j)
    EXPECT_DOUBLE_EQ(attr_a->values[j], attr_b->values[j]);
  double diff = 0.0;
  for (size_t j = 0; j < ds.d(); ++j)
    diff += std::fabs(attr_a->values[j] - attr_c->values[j]);
  EXPECT_GT(diff, 1e-6);
}

TEST(Lime, RejectsArityMismatch) {
  Dataset ds = MakeGaussianDataset(100, {.seed = 2, .dims = 3});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  LimeExplainer lime(*model, ds);
  EXPECT_FALSE(lime.Explain({1.0}).ok());
}

TEST(Surrogate, TreeDistillsBlackBox) {
  Dataset ds = MakeLoanDataset(1200);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  ASSERT_TRUE(gbdt.ok());
  auto surrogate = FitTreeSurrogate(*gbdt, ds, {.max_depth = 6});
  ASSERT_TRUE(surrogate.ok());
  EXPECT_GT(surrogate->fidelity_r2, 0.5);
  // Deeper surrogate => higher fidelity.
  auto shallow = FitTreeSurrogate(*gbdt, ds, {.max_depth = 1});
  ASSERT_TRUE(shallow.ok());
  EXPECT_GT(surrogate->fidelity_r2, shallow->fidelity_r2);
}

TEST(Surrogate, LinearFidelityOnLinearModel) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(400, 4, 11, &w);
  auto lin = LinearRegression::Fit(ds);
  ASSERT_TRUE(lin.ok());
  auto surrogate = FitLinearSurrogate(*lin, ds);
  ASSERT_TRUE(surrogate.ok());
  EXPECT_GT(surrogate->fidelity_r2, 0.999);  // Linear mimics linear exactly.
}

TEST(Qii, UnaryInfluenceFindsRelevantFeatures) {
  Dataset ds = MakeGaussianDataset(1000, {.seed = 13, .dims = 4});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  QiiExplainer qii(*model, ds, {.num_samples = 400});
  std::vector<double> unary = qii.UnaryInfluence(ds.row(0));
  ASSERT_EQ(unary.size(), 4u);
  // Feature 0 carries the most weight; its unary influence magnitude
  // should dominate feature 3.
  EXPECT_GT(std::fabs(unary[0]), std::fabs(unary[3]));
}

TEST(Qii, ShapleyAggregationEfficiency) {
  Dataset ds = MakeGaussianDataset(600, {.seed = 15, .dims = 4});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  QiiExplainer qii(*model, ds,
                   {.num_samples = 300, .num_permutations = 60});
  auto attr = qii.Explain(ds.row(1));
  ASSERT_TRUE(attr.ok());
  // Shapley efficiency holds in expectation: sum phi ~ f(x) - v(empty).
  double sum = 0.0;
  for (double v : attr->values) sum += v;
  EXPECT_NEAR(sum + attr->base_value, attr->prediction, 0.05);
}

}  // namespace
}  // namespace xai
