// Tests for the serving layer and the ExplainBatch explainer API it rides
// on: coalesced results bit-identical to solo serving, duplicate requests
// answered from one computation, deadline expiry as a typed error,
// drain-on-shutdown completing everything in flight, priority ordering,
// backpressure, and an 8-thread submit/consume race (the `serve` ctest
// label is part of the TSan job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "feature/explainer_factory.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"
#include "obs/obs.h"
#include "serve/service.h"

namespace xai {
namespace {

/// Small shared fixture: loan data + a GBDT, built once per binary.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(MakeLoanDataset(400, {.seed = 11}));
    auto m = GradientBoostedTrees::Fit(*ds_, {.num_rounds = 20});
    ASSERT_TRUE(m.ok());
    gbdt_ = new GradientBoostedTrees(std::move(*m));
  }
  static void TearDownTestSuite() {
    delete gbdt_;
    delete ds_;
    gbdt_ = nullptr;
    ds_ = nullptr;
  }

  static ExplainerConfig FastConfig() {
    ExplainerConfig config;
    config.kernel_shap.max_background = 10;
    config.lime.num_samples = 200;
    config.mc_shapley.num_permutations = 10;
    config.mc_shapley.max_background = 10;
    return config;
  }

  /// Borrowed handle around the shared GBDT — what every service /
  /// factory call site passes now that both take ModelHandle.
  static ModelHandle Handle() {
    return ModelHandle::Borrow(*gbdt_, "gbdt", 1);
  }

  static ExplanationRequest Request(size_t row, ExplainerKind kind) {
    ExplanationRequest req;
    req.instance = ds_->row(row);
    req.kind = kind;
    return req;
  }

  static Dataset* ds_;
  static GradientBoostedTrees* gbdt_;
};

Dataset* ServeTest::ds_ = nullptr;
GradientBoostedTrees* ServeTest::gbdt_ = nullptr;

// ---------------------------------------------------------------------------
// ExplainBatch API: every family's batch path is bit-identical per row to
// the solo Explain path — the property coalescing relies on.

TEST_F(ServeTest, ExplainBatchBitIdenticalAllFamilies) {
  const size_t kRows = 5;
  Matrix rows(kRows, ds_->d());
  for (size_t i = 0; i < kRows; ++i) rows.SetRow(i, ds_->row(i));
  for (ExplainerKind kind :
       {ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
        ExplainerKind::kLime, ExplainerKind::kMcShapley}) {
    SCOPED_TRACE(ExplainerKindName(kind));
    auto batch_ex = MakeExplainer(kind, Handle(), *ds_, FastConfig());
    ASSERT_TRUE(batch_ex.ok());
    auto batch = (*batch_ex)->ExplainBatch(rows);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), kRows);
    // Fresh explainer for the solo side so no state leaks between paths.
    auto solo_ex = MakeExplainer(kind, Handle(), *ds_, FastConfig());
    ASSERT_TRUE(solo_ex.ok());
    for (size_t i = 0; i < kRows; ++i) {
      auto solo = (*solo_ex)->Explain(ds_->row(i));
      ASSERT_TRUE(solo.ok());
      ASSERT_EQ(solo->values.size(), (*batch)[i].values.size());
      for (size_t j = 0; j < solo->values.size(); ++j)
        EXPECT_EQ(solo->values[j], (*batch)[i].values[j])
            << "row " << i << " feature " << j;
      EXPECT_EQ(solo->base_value, (*batch)[i].base_value);
    }
  }
}

TEST_F(ServeTest, FactoryRejectsTreeShapOnNonTreeModel) {
  auto logistic = LogisticRegression::Fit(*ds_, {});
  ASSERT_TRUE(logistic.ok());
  auto ex = MakeExplainer(ExplainerKind::kTreeShap,
                          ModelHandle::Borrow(*logistic), *ds_, {});
  ASSERT_FALSE(ex.ok());
  EXPECT_EQ(ex.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, ParseExplainerKindRoundTrips) {
  for (ExplainerKind kind :
       {ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
        ExplainerKind::kLime, ExplainerKind::kMcShapley}) {
    auto parsed = ParseExplainerKind(ExplainerKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseExplainerKind("nope").ok());
}

TEST_F(ServeTest, FingerprintSeparatesKindsAndBudgets) {
  const ExplainerConfig config = FastConfig();
  EXPECT_NE(config.Fingerprint(ExplainerKind::kKernelShap),
            config.Fingerprint(ExplainerKind::kLime));
  ExplainerConfig other = config;
  other.kernel_shap.num_samples += 1;
  EXPECT_NE(config.Fingerprint(ExplainerKind::kKernelShap),
            other.Fingerprint(ExplainerKind::kKernelShap));
  // Fields another family reads don't perturb this family's key.
  other = config;
  other.lime.num_samples += 1;
  EXPECT_EQ(config.Fingerprint(ExplainerKind::kKernelShap),
            other.Fingerprint(ExplainerKind::kKernelShap));
}

// ---------------------------------------------------------------------------
// Service behavior.

TEST_F(ServeTest, CoalescedEqualsSoloBitIdentical) {
  // Solo ground truth: one request at a time, coalescing off.
  std::vector<FeatureAttribution> solo;
  {
    ExplanationServiceOptions opts;
    opts.config = FastConfig();
    opts.coalesce = false;
    ExplanationService service(Handle(), *ds_, opts);
    for (size_t i = 0; i < 6; ++i) {
      auto r = service.Submit(Request(i % 3, ExplainerKind::kKernelShap))
                   .get();
      ASSERT_TRUE(r.ok());
      solo.push_back(std::move(r).value().attribution);
    }
  }
  // Coalesced: same 6 requests staged while paused, served in batches.
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  opts.start_paused = true;
  ExplanationService service(Handle(), *ds_, opts);
  std::vector<std::future<Result<ExplanationResponse>>> futures;
  for (size_t i = 0; i < 6; ++i)
    futures.push_back(service.Submit(Request(i % 3, ExplainerKind::kKernelShap)));
  service.Resume();
  for (size_t i = 0; i < 6; ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->attribution.values.size(), solo[i].values.size());
    for (size_t j = 0; j < r->attribution.values.size(); ++j)
      EXPECT_EQ(r->attribution.values[j], solo[i].values[j]);
    // Every completed request carries its latency breakdown: all 6 rode
    // one coalesced sweep, and time totals are self-consistent.
    EXPECT_EQ(r->breakdown.coalesce_batch_size, 6u);
    EXPECT_GT(r->breakdown.sweep_ms, 0.0);
    EXPECT_GE(r->breakdown.queue_ms, 0.0);
    EXPECT_GE(r->breakdown.total_ms, r->breakdown.sweep_ms);
  }
  // 6 requests over 3 distinct rows in one batch: 3 were answered from a
  // duplicate's computation.
  const ExplanationServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_duplicates, 3u);
}

TEST_F(ServeTest, MixedKindsNeverCoalesceTogether) {
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  opts.start_paused = true;
  ExplanationService service(Handle(), *ds_, opts);
  std::vector<std::future<Result<ExplanationResponse>>> futures;
  for (size_t i = 0; i < 4; ++i)
    futures.push_back(service.Submit(Request(
        0, i % 2 == 0 ? ExplainerKind::kTreeShap : ExplainerKind::kLime)));
  service.Resume();
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  const ExplanationServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 2u);  // one per family
  EXPECT_EQ(stats.coalesced_duplicates, 2u);
}

TEST_F(ServeTest, BudgetOverrideChangesResultAndKey) {
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  opts.start_paused = true;
  ExplanationService service(Handle(), *ds_, opts);
  ExplanationRequest a = Request(0, ExplainerKind::kMcShapley);
  ExplanationRequest b = Request(0, ExplainerKind::kMcShapley);
  b.budget = 25;  // different permutation budget -> must not coalesce
  auto fa = service.Submit(std::move(a));
  auto fb = service.Submit(std::move(b));
  service.Resume();
  auto ra = fa.get();
  auto rb = fb.get();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(service.stats().batches, 2u);
  // More permutations -> a genuinely different (better) estimate.
  bool any_diff = false;
  for (size_t j = 0; j < ra->attribution.values.size(); ++j)
    if (ra->attribution.values[j] != rb->attribution.values[j])
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST_F(ServeTest, DeadlineExpiryIsTypedError) {
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  opts.start_paused = true;  // hold the queue so the deadline passes
  ExplanationService service(Handle(), *ds_, opts);
  ExplanationRequest req = Request(0, ExplainerKind::kTreeShap);
  req.timeout = std::chrono::milliseconds(5);
  auto fut = service.Submit(std::move(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.Resume();
  auto r = fut.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().expired, 1u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST_F(ServeTest, ShutdownDrainsInFlightRequests) {
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  opts.start_paused = true;
  ExplanationService service(Handle(), *ds_, opts);
  std::vector<std::future<Result<ExplanationResponse>>> futures;
  for (size_t i = 0; i < 8; ++i)
    futures.push_back(service.Submit(Request(i, ExplainerKind::kTreeShap)));
  // Shutdown without ever resuming: accepted requests must still be
  // evaluated, not dropped.
  service.Shutdown();
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(service.stats().completed, 8u);
}

TEST_F(ServeTest, SubmitAfterShutdownIsUnavailable) {
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  ExplanationService service(Handle(), *ds_, opts);
  service.Shutdown();
  auto fut = service.Submit(Request(0, ExplainerKind::kTreeShap));
  auto r = fut.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  auto try_r = service.TrySubmit(Request(0, ExplainerKind::kTreeShap));
  ASSERT_FALSE(try_r.ok());
  EXPECT_EQ(try_r.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServeTest, TrySubmitReportsFullQueue) {
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  opts.queue_capacity = 2;
  opts.start_paused = true;  // nothing drains, so the queue genuinely fills
  ExplanationService service(Handle(), *ds_, opts);
  std::vector<std::future<Result<ExplanationResponse>>> futures;
  for (size_t i = 0; i < 2; ++i) {
    auto r = service.TrySubmit(Request(i, ExplainerKind::kTreeShap));
    ASSERT_TRUE(r.ok());
    futures.push_back(std::move(r).value());
  }
  auto rejected = service.TrySubmit(Request(0, ExplainerKind::kTreeShap));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().rejected, 1u);
  service.Resume();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

TEST_F(ServeTest, PriorityOrdersServing) {
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  opts.start_paused = true;
  opts.max_batch = 1;  // serve strictly one at a time
  ExplanationService service(Handle(), *ds_, opts);
  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::future<Result<ExplanationResponse>>> futures;
  for (int priority : {0, 2, 1}) {
    ExplanationRequest req = Request(static_cast<size_t>(priority),
                                     ExplainerKind::kTreeShap);
    req.priority = priority;
    futures.push_back(service.Submit(
        std::move(req), [&, priority](const Result<ExplanationResponse>&) {
          std::lock_guard<std::mutex> lock(order_mu);
          order.push_back(priority);
        }));
  }
  service.Resume();
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  service.Shutdown();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 0);
}

TEST_F(ServeTest, CallbackAndFutureBothFire) {
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  ExplanationService service(Handle(), *ds_, opts);
  std::promise<double> cb_base;
  auto cb_future = cb_base.get_future();
  auto fut = service.Submit(Request(0, ExplainerKind::kTreeShap),
                            [&](const Result<ExplanationResponse>& r) {
                              cb_base.set_value(
                                  r.ok() ? r->attribution.base_value : -1e30);
                            });
  auto r = fut.get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cb_future.get(), r->attribution.base_value);
  // Solo (uncoalesced) request: batch of one, with a breakdown.
  EXPECT_EQ(r->breakdown.coalesce_batch_size, 1u);
  EXPECT_GE(r->breakdown.total_ms, 0.0);
}

// 8 threads hammer Submit against the live dispatcher (this test runs
// under TSan via the `serve` label). Every future must resolve, and every
// result must match solo serving bit-for-bit.
TEST_F(ServeTest, ConcurrentSubmitRace) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 12;
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  opts.queue_capacity = 16;  // small: exercises backpressure too
  ExplanationService service(Handle(), *ds_, opts);
  std::vector<FeatureAttribution> want;
  {
    auto ex =
        MakeExplainer(ExplainerKind::kTreeShap, Handle(), *ds_, FastConfig());
    ASSERT_TRUE(ex.ok());
    for (size_t i = 0; i < 4; ++i) {
      auto attr = (*ex)->Explain(ds_->row(i));
      ASSERT_TRUE(attr.ok());
      want.push_back(std::move(attr).value());
    }
  }
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> resolved{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const size_t row = (t + i) % 4;
        auto r =
            service.Submit(Request(row, ExplainerKind::kTreeShap)).get();
        if (!r.ok()) continue;
        resolved.fetch_add(1);
        if (r->breakdown.coalesce_batch_size == 0) mismatches.fetch_add(1);
        for (size_t j = 0; j < r->attribution.values.size(); ++j)
          if (r->attribution.values[j] != want[row].values[j])
            mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  service.Shutdown();
  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(service.stats().completed, kThreads * kPerThread);
}

// The acceptance criterion for trace-context propagation: one request's
// events — submit instant on the caller thread, dequeue + sweep on the
// dispatcher, pool_chunk on the workers — all share the request's
// trace_id, across at least two OS threads.
TEST_F(ServeTest, ConnectedTraceAcrossThreads) {
  obs::ResetTrace();
  obs::SetTraceEnabled(true);
  SetGlobalThreads(4);  // guarantee real pool workers for the sweep
  uint64_t trace_id = 0;
  {
    ExplanationServiceOptions opts;
    opts.config = FastConfig();
    ExplanationService service(Handle(), *ds_, opts);
    auto r = service.Submit(Request(0, ExplainerKind::kKernelShap)).get();
    ASSERT_TRUE(r.ok());
    trace_id = r->breakdown.trace_id;
    service.Shutdown();
  }
  obs::SetTraceEnabled(false);
  SetGlobalThreads(0);
  ASSERT_NE(trace_id, 0u);

  std::set<uint32_t> tids;
  bool saw_submit = false, saw_dequeue = false, saw_batch = false,
       saw_chunk = false;
  for (const obs::TraceEventView& e : obs::TraceSnapshot()) {
    if (e.trace_id != trace_id) continue;
    tids.insert(e.tid);
    const std::string name = e.name;
    if (name == "serve.submit") saw_submit = true;
    if (name == "serve.dequeue") saw_dequeue = true;
    if (name == "serve_batch") saw_batch = true;
    if (name == "pool_chunk") saw_chunk = true;
  }
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_dequeue);
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_chunk);
  // Caller thread + dispatcher thread at minimum; pool workers on top.
  EXPECT_GE(tids.size(), 2u);
  obs::ResetTrace();
}

}  // namespace
}  // namespace xai
