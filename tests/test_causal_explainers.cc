#include <gtest/gtest.h>

#include <cmath>

#include "feature/causal_shapley.h"
#include "feature/necessity_sufficiency.h"
#include "feature/shapley.h"
#include "feature/shapley_flow.h"
#include "math/stats.h"

namespace xai {
namespace {

/// Chain SCM: x0 -> x1 (x1 = 2 x0 + noise); model f(x) = x1 only.
struct ChainSetup {
  Scm scm;
  ChainSetup() : scm(BuildDag()) {
    EXPECT_TRUE(scm.SetLinearEquation(0, {}, 0.0, 1.0).ok());
    EXPECT_TRUE(scm.SetLinearEquation(1, {2.0}, 0.0, 0.3).ok());
  }
  static Dag BuildDag() {
    Dag dag;
    (void)*dag.AddNode("x0");
    (void)*dag.AddNode("x1");
    EXPECT_TRUE(dag.AddEdge(0, 1).ok());
    return dag;
  }
};

TEST(CausalShapley, CreditsIndirectCauses) {
  ChainSetup setup;
  auto model = MakeLambdaModel(2, [](const std::vector<double>& x) {
    return x[1];
  });
  // Instance consistent with the SCM: x0 = 1, x1 = 2.
  const std::vector<double> x = {1.0, 2.0};
  auto phi = CausalShapley(model, setup.scm, {0, 1}, x,
                           {.samples_per_eval = 4000, .seed = 3});
  ASSERT_TRUE(phi.ok());
  // Under do(x0 = 1), E[x1] = 2, so x0 carries real (indirect) credit;
  // the marginal game would give x0 exactly zero.
  EXPECT_GT((*phi)[0], 0.3);
  // Efficiency: sum = f(x) - E[f] = 2 - 0.
  EXPECT_NEAR((*phi)[0] + (*phi)[1], 2.0, 0.1);
}

TEST(CausalShapley, MatchesMarginalOnIndependentFeatures) {
  // Independent features: interventional and marginal games coincide.
  Dag dag;
  (void)*dag.AddNode("a");
  (void)*dag.AddNode("b");
  Scm scm(std::move(dag));
  ASSERT_TRUE(scm.SetLinearEquation(0, {}, 0.0, 1.0).ok());
  ASSERT_TRUE(scm.SetLinearEquation(1, {}, 0.0, 1.0).ok());
  auto model = MakeLambdaModel(2, [](const std::vector<double>& x) {
    return 3.0 * x[0] - x[1];
  });
  const std::vector<double> x = {1.0, -1.0};
  auto phi = CausalShapley(model, scm, {0, 1}, x,
                           {.samples_per_eval = 5000, .seed = 7});
  ASSERT_TRUE(phi.ok());
  // Closed form: phi_j = w_j (x_j - E[x_j]) = 3*1, -1*(-1).
  EXPECT_NEAR((*phi)[0], 3.0, 0.15);
  EXPECT_NEAR((*phi)[1], 1.0, 0.15);
}

TEST(AsymmetricShapley, ShiftsCreditToRootCauses) {
  ChainSetup setup;
  auto model = MakeLambdaModel(2, [](const std::vector<double>& x) {
    return x[1];
  });
  const std::vector<double> x = {1.0, 2.0};
  ScmInterventionalGame game(model, setup.scm, {0, 1}, x, 4000, 11);
  Rng rng(5);
  std::vector<double> asym =
      AsymmetricShapley(game, setup.scm.dag(), {0, 1}, 50, &rng);
  // Only one topological order (x0 then x1): x0 absorbs the full
  // interventional marginal v({x0}) - v(empty) = 2 - 0.
  EXPECT_NEAR(asym[0], 2.0, 0.15);
  EXPECT_NEAR(asym[1], 0.0, 0.15);
  // Symmetric causal Shapley splits credit instead — asymmetry sacrificed
  // the symmetry axiom to concentrate on the distal cause.
  auto sym = ExactShapley(game);
  ASSERT_TRUE(sym.ok());
  EXPECT_GT(asym[0], (*sym)[0] + 0.2);
}

TEST(AsymmetricShapley, TopologicalExtensionsEnumeration) {
  Dag dag;
  (void)*dag.AddNode("a");
  (void)*dag.AddNode("b");
  (void)*dag.AddNode("c");
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());  // a before b; c free.
  auto exts = TopologicalExtensions(dag, {0, 1, 2});
  // Linear extensions of a<b with free c: 3 positions for c => 3.
  EXPECT_EQ(exts.size(), 3u);
  for (const auto& ext : exts) {
    size_t pos_a = 0;
    size_t pos_b = 0;
    for (size_t i = 0; i < ext.size(); ++i) {
      if (ext[i] == 0) pos_a = i;
      if (ext[i] == 1) pos_b = i;
    }
    EXPECT_LT(pos_a, pos_b);
  }
}

TEST(ShapleyFlow, ChainConservationAndPathCredit) {
  // x0 -> x1 -> x2 with coefficients 2 and -1.5, plus direct x0 -> x2
  // with coefficient 0.5 (two paths from x0 to the sink).
  Dag dag;
  (void)*dag.AddNode("x0");
  (void)*dag.AddNode("x1");
  (void)*dag.AddNode("x2");
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  Scm scm(std::move(dag));
  ASSERT_TRUE(scm.SetLinearEquation(0, {}, 0.0, 1.0).ok());
  ASSERT_TRUE(scm.SetLinearEquation(1, {2.0}, 0.0, 0.5).ok());
  // Parents of node 2 are [1, 0] (edge insertion order).
  ASSERT_TRUE(scm.SetLinearEquation(2, {-1.5, 0.5}, 0.0, 0.1).ok());

  // Baseline all zeros; instance consistent with x0=1 (noise-free):
  // x1 = 2, x2 = -1.5*2 + 0.5*1 = -2.5.
  const std::vector<double> baseline = {0, 0, 0};
  const std::vector<double> instance = {1.0, 2.0, -2.5};
  auto flow = LinearShapleyFlow(scm, 2, baseline, instance);
  ASSERT_TRUE(flow.ok());

  // Edge credits: (0->1): delta_x0 * coeff(0,1) * gain(1) = 1*2*(-1.5)=-3.
  EXPECT_NEAR(flow->edge_credit.at({0, 1}), -3.0, 1e-6);
  // (1->2): delta_x1 * coeff * gain(sink) = 2 * -1.5 = -3.
  EXPECT_NEAR(flow->edge_credit.at({1, 2}), -3.0, 1e-6);
  // (0->2): 1 * 0.5 = 0.5.
  EXPECT_NEAR(flow->edge_credit.at({0, 2}), 0.5, 1e-6);
  // Conservation at the sink: in-flow = f(x) - f(baseline) = -2.5.
  EXPECT_NEAR(flow->InFlow(2), -2.5, 1e-6);
  // Out-flow of source = total attribution of x0 through all paths:
  // 2*(-1.5)*1 + 0.5 = -2.5.
  EXPECT_NEAR(flow->OutFlow(0), -2.5, 1e-6);
}

TEST(ShapleyFlow, RejectsNonLinear) {
  Dag dag;
  (void)*dag.AddNode("a");
  (void)*dag.AddNode("b");
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  Scm scm(std::move(dag));
  ASSERT_TRUE(scm.SetLinearEquation(0, {}, 0.0, 1.0).ok());
  ASSERT_TRUE(
      scm.SetEquation(1, [](const std::vector<double>& p) { return p[0] * p[0]; },
                      0.0)
          .ok());
  EXPECT_FALSE(LinearShapleyFlow(scm, 1, {0, 0}, {1, 1}).ok());
}

/// SCM for nec/suf: two binary-ish drivers; model = threshold on their sum.
struct NecSufSetup {
  Scm scm;
  NecSufSetup() : scm(BuildDag()) {
    EXPECT_TRUE(scm.SetLinearEquation(0, {}, 0.0, 1.0).ok());
    EXPECT_TRUE(scm.SetLinearEquation(1, {}, 0.0, 1.0).ok());
    EXPECT_TRUE(scm.SetLinearEquation(2, {1.0, 1.0}, 0.0, 0.1).ok());
  }
  static Dag BuildDag() {
    Dag dag;
    (void)*dag.AddNode("a");
    (void)*dag.AddNode("b");
    (void)*dag.AddNode("s");
    EXPECT_TRUE(dag.AddEdge(0, 2).ok());
    EXPECT_TRUE(dag.AddEdge(1, 2).ok());
    return dag;
  }
};

TEST(NecessitySufficiency, CounterfactualAbductionIsExact) {
  NecSufSetup setup;
  auto model = MakeLambdaModel(3, [](const std::vector<double>& x) {
    return x[2] > 1.0 ? 1.0 : 0.0;
  });
  NecessitySufficiency ns(model, setup.scm, {0, 1, 2});
  // Observed: a=2, b=0.5, s=2.7 (noise on s = 0.2).
  const std::vector<double> obs = {2.0, 0.5, 2.7};
  // Counterfactual do(a = 0): s should become 0 + 0.5 + 0.2 = 0.7.
  auto cf = ns.Counterfactual(obs, {0}, {0.0});
  EXPECT_DOUBLE_EQ(cf[0], 0.0);
  EXPECT_DOUBLE_EQ(cf[1], 0.5);
  EXPECT_NEAR(cf[2], 0.7, 1e-12);
}

TEST(NecessitySufficiency, ScoresAreSensible) {
  NecSufSetup setup;
  auto model = MakeLambdaModel(3, [](const std::vector<double>& x) {
    return x[2] > 1.0 ? 1.0 : 0.0;
  });
  NecessitySufficiency ns(model, setup.scm, {0, 1, 2});
  // Strongly positive instance driven by a: a=3, b=0, s=3.
  const std::vector<double> obs = {3.0, 0.0, 3.0};
  auto nec_a = ns.NecessityScore(obs, {0}, 400);
  ASSERT_TRUE(nec_a.ok());
  // Replacing a with a random draw (mean 0) usually drops s below 1.
  EXPECT_GT(*nec_a, 0.5);
  auto suf_a = ns.SufficiencyScore(obs, {0}, 200);
  ASSERT_TRUE(suf_a.ok());
  // Setting a=3 on negative individuals usually pushes s over 1.
  EXPECT_GT(*suf_a, 0.5);
  // Necessity requires a positively-classified instance.
  const std::vector<double> neg = {-3.0, 0.0, -3.0};
  EXPECT_FALSE(ns.NecessityScore(neg, {0}, 50).ok());
}

}  // namespace
}  // namespace xai
