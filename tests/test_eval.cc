#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "eval/adversarial.h"
#include "eval/fidelity.h"
#include "eval/robustness.h"
#include "eval/stability.h"
#include "feature/kernel_shap.h"
#include "feature/lime.h"
#include "feature/tree_shap.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"

namespace xai {
namespace {

TEST(Stability, DeterministicExplainerScoresPerfect) {
  // TreeSHAP is deterministic: VSI and CSI must be exactly 1.
  Dataset ds = MakeLoanDataset(500);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 20});
  ASSERT_TRUE(gbdt.ok());
  TreeShapExplainer explainer(*gbdt, ds.schema());
  const std::vector<double> x = ds.row(0);
  auto report = MeasureStability(
      [&](uint64_t) { return explainer.Explain(x); }, 5, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->vsi, 1.0);
  EXPECT_DOUBLE_EQ(report->csi, 1.0);
  for (double s : report->coefficient_std) EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(Stability, MoreSamplesStabilizeLime) {
  // The Visani et al. claim (E3): VSI rises with the sampling budget.
  Dataset ds = MakeLoanDataset(600);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 25});
  ASSERT_TRUE(gbdt.ok());
  const std::vector<double> x = ds.row(4);
  auto stability_at = [&](int samples) {
    auto report = MeasureStability(
        [&](uint64_t seed) {
          LimeExplainer lime(*gbdt, ds,
                             {.num_samples = samples, .seed = seed});
          return lime.Explain(x);
        },
        8, 3);
    EXPECT_TRUE(report.ok());
    return report->vsi;
  };
  const double low = stability_at(60);
  const double high = stability_at(3000);
  EXPECT_GT(high, low);
  EXPECT_GT(high, 0.6);
}

TEST(Fidelity, FaithfulExplainerBeatsRandomAttribution) {
  Dataset ds = MakeGaussianDataset(600, {.seed = 3, .dims = 6});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());

  KernelShapExplainer shap(*model, ds, {.max_background = 30});
  auto shap_corr = AttributionCorrelation(*model, &shap, ds, 15);
  ASSERT_TRUE(shap_corr.ok());

  // Random attribution baseline.
  class RandomAttribution : public AttributionExplainer {
   public:
    explicit RandomAttribution(size_t d) : d_(d), rng_(5) {}
    Result<FeatureAttribution> Explain(
        const std::vector<double>&) override {
      FeatureAttribution attr;
      attr.values.resize(d_);
      for (double& v : attr.values) v = rng_.Gaussian();
      return attr;
    }

   private:
    size_t d_;
    Rng rng_;
  };
  RandomAttribution random(ds.d());
  auto random_corr = AttributionCorrelation(*model, &random, ds, 15);
  ASSERT_TRUE(random_corr.ok());
  EXPECT_GT(*shap_corr, 0.7);
  EXPECT_GT(*shap_corr, *random_corr + 0.3);
}

TEST(Fidelity, DeletionOfTopFeaturesMovesPrediction) {
  Dataset ds = MakeGaussianDataset(600, {.seed = 5, .dims = 6});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  KernelShapExplainer shap(*model, ds, {.max_background = 30});
  auto drop2 = DeletionFaithfulness(*model, &shap, ds, 2, 15);
  auto drop5 = DeletionFaithfulness(*model, &shap, ds, 5, 15);
  ASSERT_TRUE(drop2.ok() && drop5.ok());
  EXPECT_GT(*drop2, 0.1);
  // Sigmoid saturation means drop5 is not strictly >= drop2, but it must
  // stay in the same ballpark (most of the movement comes from the top
  // features a faithful explainer identified).
  EXPECT_GT(*drop5, 0.5 * *drop2);
}

TEST(Adversarial, ScaffoldHidesBiasFromLime) {
  // E4 (Slack et al.): the biased model's explanations name the sensitive
  // feature; the scaffolded model's mostly do not, while real decisions
  // stay biased.
  Dataset ds = MakeLoanDataset(1200, {.seed = 10});
  const size_t kGender = 6;
  auto biased = MakeLambdaModel(ds.d(), [](const std::vector<double>& x) {
    return x[6] > 0.5 ? 0.9 : 0.1;  // Pure gender discrimination.
  });
  auto innocuous = MakeLambdaModel(ds.d(), [](const std::vector<double>& x) {
    return x[1] > 50.0 ? 0.9 : 0.1;  // Income-based cover story.
  });
  auto scaffold = AdversarialScaffold::Create(ds, biased, innocuous, {});
  ASSERT_TRUE(scaffold.ok());
  EXPECT_GT(scaffold->detector_accuracy(), 0.8);

  // On real data rows the scaffold behaves exactly like the biased model.
  size_t same = 0;
  for (size_t i = 0; i < 100; ++i)
    if (scaffold->Predict(ds.row(i)) == biased.Predict(ds.row(i))) ++same;
  EXPECT_GE(same, 80u);

  LimeExplainer lime_biased(biased, ds, {.num_samples = 500, .seed = 3});
  LimeExplainer lime_scaffold(*scaffold, ds,
                              {.num_samples = 500, .seed = 3});
  auto rate_biased =
      TopFeatureIsSensitiveRate(&lime_biased, ds, kGender, 20);
  auto rate_scaffold =
      TopFeatureIsSensitiveRate(&lime_scaffold, ds, kGender, 20);
  ASSERT_TRUE(rate_biased.ok() && rate_scaffold.ok());
  EXPECT_GT(*rate_biased, 0.9);
  EXPECT_LT(*rate_scaffold, *rate_biased - 0.3);
}

TEST(Robustness, ReportBoundsAndDeterminism) {
  Dataset ds = MakeLoanDataset(500);
  auto report = MeasureRetrainingRobustness(
      [&](uint64_t seed) -> Result<std::vector<FeatureAttribution>> {
        Rng rng(seed);
        std::vector<size_t> boot(ds.n());
        for (size_t i = 0; i < ds.n(); ++i)
          boot[i] = static_cast<size_t>(rng.NextInt(ds.n()));
        Dataset resampled = ds.Select(boot);
        XAI_ASSIGN_OR_RETURN(
            GradientBoostedTrees gbdt,
            GradientBoostedTrees::Fit(resampled, {.num_rounds = 15}));
        TreeShapExplainer explainer(gbdt, ds.schema());
        std::vector<FeatureAttribution> attrs;
        for (size_t i = 0; i < 5; ++i) {
          XAI_ASSIGN_OR_RETURN(FeatureAttribution a,
                               explainer.Explain(ds.row(i)));
          attrs.push_back(std::move(a));
        }
        return attrs;
      },
      3, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->topk_overlap, 0.0);
  EXPECT_LE(report->topk_overlap, 1.0);
  EXPECT_GE(report->value_correlation, -1.0);
  EXPECT_LE(report->value_correlation, 1.0);
  // GBDT feature importances on the loan data are fairly stable.
  EXPECT_GT(report->value_correlation, 0.4);
}

}  // namespace
}  // namespace xai
