#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "math/stats.h"

namespace xai {
namespace {

Dataset TinyDataset() {
  Schema schema({FeatureSpec::Numeric("a"),
                 FeatureSpec::Categorical("c", {"x", "y", "z"})});
  Matrix x = {{1.0, 0}, {2.0, 1}, {3.0, 2}, {4.0, 0}};
  return Dataset(schema, x, {0, 1, 1, 0});
}

TEST(Schema, LookupAndFormat) {
  Dataset ds = TinyDataset();
  auto idx = ds.schema().FeatureIndex("c");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(ds.schema().FeatureIndex("nope").ok());
  EXPECT_EQ(ds.schema().FormatValue(1, 2.0), "c=z");
  EXPECT_EQ(ds.schema().FormatValue(0, 1.5), "a=1.5");
}

TEST(Dataset, CreateValidates) {
  Schema schema({FeatureSpec::Numeric("a")});
  EXPECT_FALSE(Dataset::Create(schema, Matrix(3, 1), {1.0}).ok());
  EXPECT_FALSE(Dataset::Create(schema, Matrix(2, 2), {1.0, 0.0}).ok());
  EXPECT_TRUE(Dataset::Create(schema, Matrix(2, 1), {1.0, 0.0}).ok());
}

TEST(Dataset, SelectRemoveSplit) {
  Dataset ds = TinyDataset();
  Dataset sel = ds.Select({2, 0});
  EXPECT_EQ(sel.n(), 2u);
  EXPECT_DOUBLE_EQ(sel.x()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sel.y()[1], 0.0);

  Dataset rem = ds.RemoveRows({0, 3});
  EXPECT_EQ(rem.n(), 2u);
  EXPECT_DOUBLE_EQ(rem.x()(0, 0), 2.0);

  Rng rng(1);
  auto [train, test] = ds.Split(0.5, &rng);
  EXPECT_EQ(train.n(), 2u);
  EXPECT_EQ(test.n(), 2u);
}

TEST(Transforms, StandardizerRoundTrip) {
  Dataset ds = MakeLoanDataset(500);
  Standardizer st = Standardizer::Fit(ds);
  Dataset z = st.Transform(ds);
  // Numeric columns ~ mean 0 / std 1; categorical untouched.
  std::vector<double> col0 = z.x().Col(0);
  EXPECT_NEAR(Mean(col0), 0.0, 1e-9);
  EXPECT_NEAR(StdDev(col0), 1.0, 1e-9);
  std::vector<double> gender_before = ds.x().Col(6);
  std::vector<double> gender_after = z.x().Col(6);
  for (size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(gender_before[i], gender_after[i]);
  // Inverse round trip.
  std::vector<double> row = ds.row(5);
  std::vector<double> back = st.InverseRow(st.TransformRow(row));
  for (size_t j = 0; j < row.size(); ++j) EXPECT_NEAR(back[j], row[j], 1e-9);
}

TEST(Transforms, DiscretizerBins) {
  Dataset ds = MakeLoanDataset(1000);
  Discretizer disc = Discretizer::Fit(ds, 4);
  EXPECT_EQ(disc.NumBins(0), 4);
  // Categorical feature "education" has 4 categories.
  EXPECT_EQ(disc.NumBins(5), 4);
  EXPECT_EQ(disc.Bin(5, 2.0), 2);
  // Bins partition: equal-frequency -> each bin ~25%.
  int counts[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < ds.n(); ++i) ++counts[disc.Bin(1, ds.x()(i, 1))];
  for (int b = 0; b < 4; ++b) EXPECT_NEAR(counts[b] / 1000.0, 0.25, 0.05);
  // Label rendering.
  EXPECT_NE(disc.BinLabel(ds.schema(), 1, 0).find("income"),
            std::string::npos);
}

TEST(Transforms, LabelNoiseInjection) {
  Dataset ds = MakeLoanDataset(400);
  std::vector<double> orig = ds.y();
  Rng rng(5);
  std::vector<size_t> corrupted = InjectLabelNoise(&ds, 0.2, &rng);
  EXPECT_EQ(corrupted.size(), 80u);
  std::set<size_t> cset(corrupted.begin(), corrupted.end());
  for (size_t i = 0; i < ds.n(); ++i) {
    if (cset.count(i)) {
      EXPECT_NE(ds.y()[i], orig[i]);
    } else {
      EXPECT_EQ(ds.y()[i], orig[i]);
    }
  }
}

TEST(Transforms, OneHotEncode) {
  Dataset ds = TinyDataset();
  Dataset oh = OneHotEncode(ds);
  EXPECT_EQ(oh.d(), 4u);  // 1 numeric + 3 categories.
  EXPECT_EQ(oh.schema().feature(1).name, "c=x");
  EXPECT_DOUBLE_EQ(oh.x()(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(oh.x()(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(oh.x()(1, 1), 0.0);
}

TEST(Transforms, ColumnStats) {
  Dataset ds = TinyDataset();
  ColumnStats cs = ComputeColumnStats(ds);
  EXPECT_NEAR(cs.mean[0], 2.5, 1e-12);
  ASSERT_EQ(cs.frequencies[1].size(), 3u);
  EXPECT_DOUBLE_EQ(cs.frequencies[1][0], 2.0);  // "x" appears twice.
}

TEST(Csv, RoundTrip) {
  Dataset ds = MakeLoanDataset(50);
  const std::string path = "/tmp/xai_test_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(ds, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->n(), ds.n());
  EXPECT_EQ(back->d(), ds.d());
  // Categorical columns detected.
  EXPECT_FALSE(back->schema().feature(6).is_numeric());
  EXPECT_TRUE(back->schema().feature(1).is_numeric());
  for (size_t i = 0; i < ds.n(); ++i) {
    EXPECT_NEAR(back->x()(i, 1), ds.x()(i, 1), 1e-6);
    EXPECT_DOUBLE_EQ(back->y()[i], ds.y()[i]);
  }
  std::remove(path.c_str());
}

TEST(Csv, Errors) {
  EXPECT_FALSE(ReadCsv("/nonexistent/file.csv").ok());
}

TEST(Synthetic, LoanDatasetShapeAndCorrelations) {
  Dataset ds = MakeLoanDataset(3000);
  EXPECT_EQ(ds.n(), 3000u);
  EXPECT_EQ(ds.d(), 8u);
  // Label is mixed.
  const double pos = Mean(ds.y());
  EXPECT_GT(pos, 0.15);
  EXPECT_LT(pos, 0.85);
  // Income correlates positively with age and debt.
  EXPECT_GT(PearsonCorrelation(ds.x().Col(0), ds.x().Col(1)), 0.1);
  EXPECT_GT(PearsonCorrelation(ds.x().Col(1), ds.x().Col(3)), 0.3);
  // Higher income -> more approvals.
  std::vector<double> income = ds.x().Col(1);
  EXPECT_GT(PearsonCorrelation(income, ds.y()), 0.1);
}

TEST(Synthetic, GenderBiasInjection) {
  Dataset fair = MakeLoanDataset(4000, {.seed = 3, .gender_bias = 0.0});
  Dataset biased = MakeLoanDataset(4000, {.seed = 3, .gender_bias = 3.0});
  auto approval_gap = [](const Dataset& ds) {
    double male = 0, female = 0, nm = 0, nf = 0;
    for (size_t i = 0; i < ds.n(); ++i) {
      if (ds.x()(i, 6) > 0.5) {
        male += ds.y()[i];
        ++nm;
      } else {
        female += ds.y()[i];
        ++nf;
      }
    }
    return male / nm - female / nf;
  };
  EXPECT_LT(std::fabs(approval_gap(fair)), 0.08);
  EXPECT_GT(approval_gap(biased), 0.2);
}

TEST(Synthetic, GaussianChainCorrelation) {
  Dataset ds = MakeGaussianDataset(20000, {.seed = 1, .dims = 4, .rho = 0.6});
  EXPECT_NEAR(PearsonCorrelation(ds.x().Col(0), ds.x().Col(1)), 0.6, 0.05);
  EXPECT_NEAR(PearsonCorrelation(ds.x().Col(1), ds.x().Col(2)), 0.6, 0.05);
  // Chain: corr(x0, x2) ~ rho^2.
  EXPECT_NEAR(PearsonCorrelation(ds.x().Col(0), ds.x().Col(2)), 0.36, 0.05);
}

TEST(Synthetic, LinearRegressionDatasetWeights) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(100, 5, 9, &w);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(ds.d(), 5u);
  EXPECT_EQ(ds.n(), 100u);
}

TEST(Synthetic, HiringRulesHold) {
  Dataset ds = MakeHiringDataset(2000);
  // Check the generative rule modulo 5% noise: referred + high interview.
  size_t matching = 0;
  size_t hired = 0;
  for (size_t i = 0; i < ds.n(); ++i) {
    if (ds.x()(i, 3) == 1.0 && ds.x()(i, 1) >= 5.0) {
      ++matching;
      if (ds.y()[i] >= 0.5) ++hired;
    }
  }
  ASSERT_GT(matching, 50u);
  EXPECT_GT(static_cast<double>(hired) / matching, 0.85);
}

}  // namespace
}  // namespace xai
