#include <gtest/gtest.h>

#include "relational/query.h"
#include "relational/relation.h"

namespace xai {
namespace {

// Small star schema: orders(customer, amount), customers(customer, region).
struct Db {
  Relation orders{"orders", {"customer", "amount"}};
  Relation customers{"customers", {"customer", "region"}};
  TupleId first_order = 0;

  Db() {
    first_order = *orders.Insert({1, 100});
    (void)*orders.Insert({1, 50});
    (void)*orders.Insert({2, 200});
    (void)*orders.Insert({3, 10});
    (void)*customers.Insert({1, 0});  // Region 0.
    (void)*customers.Insert({2, 0});
    (void)*customers.Insert({3, 1});  // Region 1.
  }
};

TEST(Relation, InsertAndProvenance) {
  Relation r("t", {"a"});
  auto t1 = r.Insert({1.0});
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(r.num_rows(), 1u);
  ASSERT_EQ(r.provenance(0).size(), 1u);
  EXPECT_EQ(r.provenance(0)[0][0], *t1);
  EXPECT_FALSE(r.Insert({1.0, 2.0}).ok());  // Arity.
}

TEST(Relation, NormalizeProvenanceMinimality) {
  WhyProvenance p = {{3, 1}, {1, 3}, {1, 2, 3}, {5}};
  WhyProvenance norm = NormalizeProvenance(p);
  // {1,3} deduped, {1,2,3} dominated by {1,3}, {5} kept.
  ASSERT_EQ(norm.size(), 2u);
  EXPECT_EQ(norm[0], (Witness{1, 3}));
  EXPECT_EQ(norm[1], (Witness{5}));
}

TEST(Query, SelectKeepsProvenance) {
  Db db;
  auto pred = ColumnPredicate(db.orders, "amount", ">", 60.0);
  ASSERT_TRUE(pred.ok());
  Relation big = Select(db.orders, *pred);
  EXPECT_EQ(big.num_rows(), 2u);
  EXPECT_EQ(big.Lineage(0).size(), 1u);
  EXPECT_FALSE(ColumnPredicate(db.orders, "xx", ">", 0.0).ok());
  EXPECT_FALSE(ColumnPredicate(db.orders, "amount", "~", 0.0).ok());
}

TEST(Query, ProjectMergesDuplicates) {
  Db db;
  auto proj = Project(db.orders, {"customer"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->num_rows(), 3u);  // Customers 1, 2, 3.
  // Customer 1 has two derivations (two orders).
  for (size_t i = 0; i < proj->num_rows(); ++i) {
    if (proj->value(i, 0) == 1.0) {
      EXPECT_EQ(proj->provenance(i).size(), 2u);
    }
  }
}

TEST(Query, NaturalJoinCombinesWitnesses) {
  Db db;
  auto joined = NaturalJoin(db.orders, db.customers);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 4u);  // Every order matches one customer.
  EXPECT_EQ(joined->num_columns(), 3u);
  for (size_t i = 0; i < joined->num_rows(); ++i) {
    ASSERT_EQ(joined->provenance(i).size(), 1u);
    EXPECT_EQ(joined->provenance(i)[0].size(), 2u);  // Order + customer.
  }
  Relation no_shared("x", {"p"});
  EXPECT_FALSE(NaturalJoin(db.orders, no_shared).ok());
}

TEST(Query, Aggregates) {
  Db db;
  auto sum = Aggregate(db.orders, AggKind::kSum, "amount");
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->value, 360.0);
  EXPECT_EQ(sum->lineage.size(), 4u);
  EXPECT_DOUBLE_EQ(Aggregate(db.orders, AggKind::kCount, "")->value, 4.0);
  EXPECT_DOUBLE_EQ(Aggregate(db.orders, AggKind::kAvg, "amount")->value,
                   90.0);
  EXPECT_DOUBLE_EQ(Aggregate(db.orders, AggKind::kMin, "amount")->value,
                   10.0);
  EXPECT_DOUBLE_EQ(Aggregate(db.orders, AggKind::kMax, "amount")->value,
                   200.0);
}

TEST(Query, GroupAggregateOverJoin) {
  Db db;
  auto joined = NaturalJoin(db.orders, db.customers);
  ASSERT_TRUE(joined.ok());
  auto grouped = GroupAggregate(*joined, {"region"}, AggKind::kSum, "amount");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->num_rows(), 2u);
  for (size_t i = 0; i < grouped->num_rows(); ++i) {
    if (grouped->value(i, 0) == 0.0) {
      EXPECT_DOUBLE_EQ(grouped->value(i, 1), 350.0);
      // Lineage: 3 orders + 2 customers.
      EXPECT_EQ(grouped->Lineage(i).size(), 5u);
    } else {
      EXPECT_DOUBLE_EQ(grouped->value(i, 1), 10.0);
    }
  }
}

TEST(Relation, FilterByTupleId) {
  Db db;
  std::vector<bool> keep(4, true);
  keep[0] = false;  // Drop the first order (amount 100).
  Relation sub = db.orders.FilterByTupleId(keep, db.first_order);
  EXPECT_EQ(sub.num_rows(), 3u);
  auto sum = Aggregate(sub, AggKind::kSum, "amount");
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->value, 260.0);
}

}  // namespace
}  // namespace xai
