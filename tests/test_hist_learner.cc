// Binned training pipeline: BinMapper/BinnedDataset quantization, the
// histogram tree learner's parity with the exact sort-per-node oracle,
// histogram subtraction, thread-count bit-identity, and the GBDT/forest
// integration (`ctest -L train`; in the TSan CI job for the per-feature
// ParallelFor sweeps).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/binned.h"
#include "data/synthetic.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/hist_learner.h"
#include "model/metrics.h"
#include "model/tree.h"

namespace xai {
namespace {

/// RAII reset so no test leaks a SetGlobalThreads override.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetGlobalThreads(0); }
};

TreeConfig ExactConfig(int max_depth, int min_samples_leaf) {
  TreeConfig cfg;
  cfg.max_depth = max_depth;
  cfg.min_samples_leaf = min_samples_leaf;
  cfg.train.method = TrainMethod::kExact;
  return cfg;
}

TreeConfig HistConfig(int max_depth, int min_samples_leaf,
                      int max_bins = 256) {
  TreeConfig cfg;
  cfg.max_depth = max_depth;
  cfg.min_samples_leaf = min_samples_leaf;
  cfg.train.method = TrainMethod::kHist;
  cfg.train.max_bins = max_bins;
  return cfg;
}

/// Integer-valued features and targets keep every histogram sum exact, so
/// learner comparisons can demand bitwise equality instead of epsilons.
Dataset MakeIntegerDataset(size_t n, size_t d, uint64_t seed,
                           int distinct_values = 20) {
  Rng rng(seed);
  Matrix x(n, d);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (size_t j = 0; j < d; ++j) {
      x(i, j) = static_cast<double>(
          rng.NextInt(static_cast<uint64_t>(distinct_values)));
      score += (j % 2 == 0 ? 1.0 : -1.0) * x(i, j);
    }
    y[i] = score > 0.0 ? 1.0 : 0.0;
  }
  std::vector<FeatureSpec> specs;
  for (size_t j = 0; j < d; ++j)
    specs.push_back(FeatureSpec::Numeric("f" + std::to_string(j)));
  return Dataset(Schema(specs), std::move(x), std::move(y));
}

void ExpectIdenticalTrees(const Tree& a, const Tree& b,
                          bool compare_thresholds) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].feature, b.nodes[i].feature) << "node " << i;
    EXPECT_EQ(a.nodes[i].left, b.nodes[i].left) << "node " << i;
    EXPECT_EQ(a.nodes[i].right, b.nodes[i].right) << "node " << i;
    EXPECT_EQ(a.nodes[i].value, b.nodes[i].value) << "node " << i;
    EXPECT_EQ(a.nodes[i].cover, b.nodes[i].cover) << "node " << i;
    if (compare_thresholds)
      EXPECT_EQ(a.nodes[i].threshold, b.nodes[i].threshold) << "node " << i;
  }
}

// ---------------------------------------------------------------- BinMapper

TEST(BinMapper, ExactModeUsesMidpointBoundaries) {
  const std::vector<double> vals = {5.0, 1.0, 2.0, 2.0, 3.0};
  BinMapper m = BinMapper::Build(vals.data(), vals.size(), 256);
  EXPECT_EQ(m.num_bins(), 4);  // distinct: 1, 2, 3, 5
  ASSERT_EQ(m.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(m.bounds()[0], 1.5);
  EXPECT_DOUBLE_EQ(m.bounds()[1], 2.5);
  EXPECT_DOUBLE_EQ(m.bounds()[2], 4.0);
  EXPECT_EQ(m.CodeOf(1.0), 0u);
  EXPECT_EQ(m.CodeOf(2.0), 1u);
  EXPECT_EQ(m.CodeOf(3.0), 2u);
  EXPECT_EQ(m.CodeOf(5.0), 3u);
  EXPECT_TRUE(std::isinf(m.BinUpperBound(3)));
}

TEST(BinMapper, CodeAndThresholdPartitionConsistently) {
  // v <= BinUpperBound(b)  <=>  CodeOf(v) <= b — the property that lets a
  // fitted tree store real thresholds while training partitions on codes.
  Rng rng(11);
  std::vector<double> vals(5000);
  for (double& v : vals) v = rng.Gaussian();
  BinMapper m = BinMapper::Build(vals.data(), vals.size(), 32);
  ASSERT_GT(m.num_bins(), 8);
  ASSERT_LE(m.num_bins(), 32);
  for (const double v : vals) {
    const uint32_t c = m.CodeOf(v);
    for (int b = 0; b < m.num_bins() - 1; ++b) {
      EXPECT_EQ(v <= m.BinUpperBound(b), c <= static_cast<uint32_t>(b))
          << "v=" << v << " bin=" << b;
    }
  }
}

TEST(BinMapper, QuantileModeBalancesCounts) {
  // 10000 uniform draws into 16 bins: every bin should hold a nontrivial
  // share (quantile boundaries, not uniform-width ones).
  Rng rng(7);
  std::vector<double> vals(10000);
  for (double& v : vals) v = rng.NextDouble() * rng.NextDouble();  // Skewed.
  BinMapper m = BinMapper::Build(vals.data(), vals.size(), 16);
  ASSERT_EQ(m.num_bins(), 16);
  std::vector<size_t> counts(16, 0);
  for (const double v : vals) ++counts[m.CodeOf(v)];
  for (size_t b = 0; b < counts.size(); ++b) {
    EXPECT_GT(counts[b], 10000u / 64) << "bin " << b;
    EXPECT_LT(counts[b], 10000u / 4) << "bin " << b;
  }
}

TEST(BinMapper, ConstantColumnGetsOneBin) {
  const std::vector<double> vals(100, 3.14);
  BinMapper m = BinMapper::Build(vals.data(), vals.size(), 256);
  EXPECT_EQ(m.num_bins(), 1);
  EXPECT_EQ(m.CodeOf(3.14), 0u);
  EXPECT_TRUE(std::isinf(m.BinUpperBound(0)));
}

// ------------------------------------------------------------ BinnedDataset

TEST(BinnedDataset, CodeWidthFollowsPerFeatureBinCount) {
  // Feature 0: 500 distinct values -> u16 when max_bins allows them all.
  // Feature 1: 5 distinct values -> u8 always.
  const size_t n = 500;
  Matrix x(n, 2);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = static_cast<double>(i % 5);
  }
  auto wide = BinnedDataset::Build(x, 1024);
  ASSERT_TRUE(wide.ok());
  EXPECT_FALSE(wide->narrow(0));
  EXPECT_EQ(wide->num_bins(0), 500);
  EXPECT_TRUE(wide->narrow(1));
  EXPECT_EQ(wide->num_bins(1), 5);

  auto capped = BinnedDataset::Build(x, 256);
  ASSERT_TRUE(capped.ok());
  EXPECT_TRUE(capped->narrow(0));
  EXPECT_LE(capped->num_bins(0), 256);
  EXPECT_GT(capped->num_bins(0), 128);

  // Codes round-trip through the mapper for both widths.
  for (size_t i = 0; i < n; i += 17) {
    EXPECT_EQ(wide->Code(0, i), wide->mapper(0).CodeOf(x(i, 0)));
    EXPECT_EQ(capped->Code(0, i), capped->mapper(0).CodeOf(x(i, 0)));
  }
  EXPECT_EQ(wide->TotalBins(), 505u);
  EXPECT_EQ(wide->BinOffset(1), 500u);
}

TEST(BinnedDataset, RejectsBadArguments) {
  EXPECT_FALSE(BinnedDataset::Build(Matrix(), 256).ok());
  EXPECT_FALSE(BinnedDataset::Build(Matrix(3, 2), 1).ok());
  EXPECT_FALSE(BinnedDataset::Build(Matrix(3, 2), 100000).ok());
}

// ---------------------------------------------------- hist-vs-exact parity

TEST(HistLearner, IdenticalTreeOnSingleFeature) {
  // One feature: every node's value range is a contiguous run of the
  // global distinct values, so even recovered thresholds must match the
  // exact learner bit for bit, at every depth. The label is a hash bit of
  // the value — piecewise constant with many breakpoints, forcing a deep
  // tree.
  const size_t n = 600;
  Matrix x(n, 1);
  std::vector<double> y(n);
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = rng.NextInt(30);
    x(i, 0) = static_cast<double>(v);
    y[i] = static_cast<double>((v * 2654435761ULL >> 7) & 1);
  }
  const Tree exact = FitRegressionTree(x, y, ExactConfig(6, 2));
  auto binned = BinnedDataset::Build(x, 256);
  ASSERT_TRUE(binned.ok());
  const Tree hist = FitRegressionTreeHist(*binned, y, HistConfig(6, 2));
  ASSERT_GT(exact.nodes.size(), 5u);
  ExpectIdenticalTrees(exact, hist, /*compare_thresholds=*/true);
}

TEST(HistLearner, IdenticalStructureOnMultiFeatureIntegerData) {
  // Across features, interior nodes can see gaps in a feature's value set,
  // so recovered thresholds may sit at different (equivalent) midpoints —
  // but the structure, covers, leaf values, and every training-row
  // prediction must be identical when sums are exact.
  Dataset ds = MakeIntegerDataset(800, 5, 17, 12);
  const Tree exact =
      FitRegressionTree(ds.x(), ds.y(), ExactConfig(6, 5));
  auto binned = BinnedDataset::Build(ds.x(), 256);
  ASSERT_TRUE(binned.ok());
  const Tree hist =
      FitRegressionTreeHist(*binned, ds.y(), HistConfig(6, 5));
  ASSERT_GT(exact.nodes.size(), 10u);
  ExpectIdenticalTrees(exact, hist, /*compare_thresholds=*/false);
  for (size_t i = 0; i < ds.n(); ++i) {
    EXPECT_EQ(exact.Predict(ds.x().RowPtr(i)), hist.Predict(ds.x().RowPtr(i)))
        << "row " << i;
  }
}

TEST(HistLearner, HessianWeightedParityWithinEpsilon) {
  // With real-valued hessian weights, sums accumulate in different orders
  // (sorted rows vs bins), so parity is within-epsilon rather than exact.
  Dataset ds = MakeIntegerDataset(500, 3, 23, 10);
  std::vector<double> hess(ds.n());
  Rng rng(5);
  for (double& h : hess) h = 0.5 + rng.NextDouble();
  const Tree exact =
      FitRegressionTree(ds.x(), ds.y(), ExactConfig(4, 5), &hess);
  auto binned = BinnedDataset::Build(ds.x(), 256);
  ASSERT_TRUE(binned.ok());
  const Tree hist =
      FitRegressionTreeHist(*binned, ds.y(), HistConfig(4, 5), &hess);
  ASSERT_EQ(exact.nodes.size(), hist.nodes.size());
  for (size_t i = 0; i < ds.n(); ++i) {
    EXPECT_NEAR(exact.Predict(ds.x().RowPtr(i)), hist.Predict(ds.x().RowPtr(i)),
                1e-9);
  }
}

TEST(HistLearner, SubtractionMatchesDirectAccumulation) {
  // Integer sums subtract exactly, so the parent − sibling histogram path
  // must give bitwise the same tree as re-accumulating both children.
  Dataset ds = MakeIntegerDataset(1000, 4, 29, 16);
  auto binned = BinnedDataset::Build(ds.x(), 256);
  ASSERT_TRUE(binned.ok());
  TreeConfig with_sub = HistConfig(7, 2);
  TreeConfig no_sub = HistConfig(7, 2);
  no_sub.train.hist_subtraction = false;
  const Tree a = FitRegressionTreeHist(*binned, ds.y(), with_sub);
  const Tree b = FitRegressionTreeHist(*binned, ds.y(), no_sub);
  ASSERT_GT(a.nodes.size(), 15u);
  ExpectIdenticalTrees(a, b, /*compare_thresholds=*/true);
}

TEST(HistLearner, AccuracyWithinEpsilonOfExactOnRealData) {
  Dataset ds = MakeLoanDataset(3000);
  Rng rng(9);
  auto [train, test] = ds.Split(0.7, &rng);
  GbdtOptions exact_opts{.num_rounds = 30};
  exact_opts.tree.train.method = TrainMethod::kExact;
  GbdtOptions hist_opts{.num_rounds = 30};
  hist_opts.tree.train.method = TrainMethod::kHist;
  auto exact = GradientBoostedTrees::Fit(train, exact_opts);
  auto hist = GradientBoostedTrees::Fit(train, hist_opts);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(hist.ok());
  const double auc_exact = EvaluateAuc(*exact, test);
  const double auc_hist = EvaluateAuc(*hist, test);
  EXPECT_GT(auc_exact, 0.8);
  EXPECT_GT(auc_hist, 0.8);
  EXPECT_NEAR(auc_exact, auc_hist, 0.02);
}

// ------------------------------------------------ determinism + threading

TEST(HistLearner, BitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Dataset ds = MakeGaussianDataset(2000, {.seed = 31, .dims = 8, .rho = 0.3});
  GbdtOptions opts{.num_rounds = 15};
  opts.tree.train.method = TrainMethod::kHist;

  SetGlobalThreads(1);
  auto serial = GradientBoostedTrees::Fit(ds, opts);
  ASSERT_TRUE(serial.ok());
  SetGlobalThreads(4);
  auto parallel = GradientBoostedTrees::Fit(ds, opts);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(serial->trees().size(), parallel->trees().size());
  for (size_t t = 0; t < serial->trees().size(); ++t)
    ExpectIdenticalTrees(serial->trees()[t], parallel->trees()[t],
                         /*compare_thresholds=*/true);
}

TEST(RandomForest, BitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Dataset ds = MakeLoanDataset(1200);
  RandomForestOptions opts{.num_trees = 12};

  SetGlobalThreads(1);
  auto serial = RandomForest::Fit(ds, opts);
  ASSERT_TRUE(serial.ok());
  SetGlobalThreads(4);
  auto parallel = RandomForest::Fit(ds, opts);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(serial->trees().size(), parallel->trees().size());
  for (size_t t = 0; t < serial->trees().size(); ++t)
    ExpectIdenticalTrees(serial->trees()[t], parallel->trees()[t],
                         /*compare_thresholds=*/true);
  for (size_t i = 0; i < 20; ++i)
    EXPECT_EQ(serial->Predict(ds.row(i)), parallel->Predict(ds.row(i)));
}

TEST(RandomForest, ExactModeAlsoThreadCountInvariant) {
  // The per-tree ChunkSeed streams decouple bagging from scheduling for
  // both methods, not just hist.
  ThreadCountGuard guard;
  Dataset ds = MakeLoanDataset(800);
  RandomForestOptions opts{.num_trees = 8};
  opts.tree.train.method = TrainMethod::kExact;

  SetGlobalThreads(1);
  auto serial = RandomForest::Fit(ds, opts);
  SetGlobalThreads(3);
  auto parallel = RandomForest::Fit(ds, opts);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (size_t t = 0; t < serial->trees().size(); ++t)
    ExpectIdenticalTrees(serial->trees()[t], parallel->trees()[t],
                         /*compare_thresholds=*/true);
}

// --------------------------------------------------------- degenerate data

TEST(HistLearner, ConstantColumnNeverSplits) {
  const size_t n = 400;
  Matrix x(n, 2);
  std::vector<double> y(n);
  Rng rng(41);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 7.0;  // Constant.
    x(i, 1) = static_cast<double>(rng.NextInt(10));
    y[i] = x(i, 1) >= 5.0 ? 1.0 : 0.0;
  }
  auto binned = BinnedDataset::Build(x, 256);
  ASSERT_TRUE(binned.ok());
  const Tree tree = FitRegressionTreeHist(*binned, y, HistConfig(5, 5));
  ASSERT_GT(tree.nodes.size(), 1u);
  for (const TreeNode& node : tree.nodes)
    if (!node.is_leaf()) EXPECT_EQ(node.feature, 1);
}

TEST(HistLearner, AllConstantFeaturesYieldSingleLeaf) {
  Matrix x(50, 3, 1.0);
  std::vector<double> y(50, 0.0);
  for (size_t i = 0; i < 25; ++i) y[i] = 1.0;
  auto binned = BinnedDataset::Build(x, 256);
  ASSERT_TRUE(binned.ok());
  const Tree tree = FitRegressionTreeHist(*binned, y, HistConfig(5, 5));
  ASSERT_EQ(tree.nodes.size(), 1u);
  EXPECT_TRUE(tree.nodes[0].is_leaf());
  EXPECT_DOUBLE_EQ(tree.nodes[0].value, 0.5);
  EXPECT_DOUBLE_EQ(tree.nodes[0].cover, 50.0);
}

TEST(HistLearner, RespectsDepthAndLeafLimits) {
  Dataset ds = MakeLoanDataset(1500);
  auto binned = BinnedDataset::Build(ds.x(), 64);
  ASSERT_TRUE(binned.ok());
  const Tree tree = FitRegressionTreeHist(*binned, ds.y(), HistConfig(3, 40));
  EXPECT_LE(tree.MaxDepth(), 3);
  for (const TreeNode& node : tree.nodes)
    if (node.is_leaf()) EXPECT_GE(node.cover, 40.0);
}

TEST(HistLearner, WideU16FeaturesTrainCorrectly) {
  // 1000 distinct values with max_bins 2048 forces the u16 code path end
  // to end (binning, histogram accumulation, partitioning, thresholds).
  const size_t n = 2000;
  Matrix x(n, 2);
  std::vector<double> y(n);
  Rng rng(47);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(rng.NextInt(1000));
    x(i, 1) = rng.Gaussian();
    y[i] = x(i, 0) >= 500.0 ? 1.0 : 0.0;
  }
  auto binned = BinnedDataset::Build(x, 2048);
  ASSERT_TRUE(binned.ok());
  EXPECT_FALSE(binned->narrow(0));
  const Tree tree = FitRegressionTreeHist(*binned, y, HistConfig(4, 10));
  ASSERT_FALSE(tree.nodes[0].is_leaf());
  // The label rule is recoverable: training error should be near zero.
  size_t errors = 0;
  for (size_t i = 0; i < n; ++i)
    if ((tree.Predict(x.RowPtr(i)) >= 0.5) != (y[i] >= 0.5)) ++errors;
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(n), 0.02);
}

// ------------------------------------------------------- GBDT integration

TEST(HistLearner, LeafOfRowMatchesTreeTraversal) {
  // The GBDT margin update trusts leaf_of_row instead of re-walking the
  // tree: the two must agree on every training row.
  Dataset ds = MakeLoanDataset(1000);
  auto binned = BinnedDataset::Build(ds.x(), 256);
  ASSERT_TRUE(binned.ok());
  std::vector<int32_t> leaf_of_row;
  const Tree tree = FitRegressionTreeHist(*binned, ds.y(), HistConfig(6, 5),
                                          nullptr, nullptr, nullptr,
                                          &leaf_of_row);
  ASSERT_EQ(leaf_of_row.size(), ds.n());
  for (size_t i = 0; i < ds.n(); ++i) {
    ASSERT_GE(leaf_of_row[i], 0);
    EXPECT_EQ(leaf_of_row[i], tree.LeafIndex(ds.x().RowPtr(i))) << "row " << i;
  }
}

TEST(HistLearner, LeafOfRowMarksRowsOutsideSubset) {
  Dataset ds = MakeLoanDataset(300);
  auto binned = BinnedDataset::Build(ds.x(), 256);
  ASSERT_TRUE(binned.ok());
  std::vector<size_t> subset;
  for (size_t i = 0; i < ds.n(); i += 2) subset.push_back(i);
  std::vector<int32_t> leaf_of_row;
  const Tree tree = FitRegressionTreeHist(*binned, ds.y(), HistConfig(4, 5),
                                          nullptr, &subset, nullptr,
                                          &leaf_of_row);
  for (size_t i = 0; i < ds.n(); ++i) {
    if (i % 2 == 0) {
      EXPECT_GE(leaf_of_row[i], 0);
    } else {
      EXPECT_EQ(leaf_of_row[i], -1);
    }
  }
}

TEST(Gbdt, SubsampledHistTrainingStillLearns) {
  // Subsampled rounds route margin updates through the compiled flat
  // ensemble; the fit must stay deterministic and accurate.
  Dataset ds = MakeLoanDataset(2000);
  Rng rng(13);
  auto [train, test] = ds.Split(0.7, &rng);
  GbdtOptions opts{.num_rounds = 40, .subsample = 0.7};
  auto a = GradientBoostedTrees::Fit(train, opts);
  auto b = GradientBoostedTrees::Fit(train, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(EvaluateAuc(*a, test), 0.8);
  EXPECT_EQ(a->Predict(test.row(0)), b->Predict(test.row(0)));
}

TEST(DecisionTree, HistDefaultMatchesExactOnSmallData) {
  // DecisionTree::Fit carries the knob too; on integer data the two
  // methods agree exactly (modulo interior thresholds).
  Dataset ds = MakeIntegerDataset(500, 3, 53, 8);
  TreeConfig exact_cfg = ExactConfig(5, 5);
  TreeConfig hist_cfg = HistConfig(5, 5);
  auto exact = DecisionTree::Fit(ds, exact_cfg);
  auto hist = DecisionTree::Fit(ds, hist_cfg);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(hist.ok());
  for (size_t i = 0; i < ds.n(); ++i)
    EXPECT_EQ(exact->Predict(ds.row(i)), hist->Predict(ds.row(i)));
}

}  // namespace
}  // namespace xai
