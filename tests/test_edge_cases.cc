// Edge cases and error paths across the public API: the failure-injection
// counterpart of the happy-path suites.
#include <gtest/gtest.h>

#include <cmath>

#include "cf/dice.h"
#include "cf/geco.h"
#include "core/game.h"
#include "data/synthetic.h"
#include "feature/kernel_shap.h"
#include "feature/shapley.h"
#include "feature/tree_shap.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/knn.h"
#include "model/logistic_regression.h"

namespace xai {
namespace {

TEST(EdgeCases, KernelShapSingleFeature) {
  // d = 1: no proper coalitions exist; phi_0 must be f(x) - base exactly.
  Dataset ds = MakeGaussianDataset(100, {.seed = 2, .dims = 1});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  KernelShapExplainer ks(*model, ds, {.max_background = 20});
  auto attr = ks.Explain(ds.row(0));
  ASSERT_TRUE(attr.ok());
  ASSERT_EQ(attr->values.size(), 1u);
  EXPECT_NEAR(attr->values[0], attr->prediction - attr->base_value, 1e-9);
}

TEST(EdgeCases, ExactShapleySinglePlayerAndEmpty) {
  LambdaGame one(1, [](const std::vector<bool>& s) {
    return s[0] ? 7.0 : 2.0;
  });
  auto phi = ExactShapley(one);
  ASSERT_TRUE(phi.ok());
  EXPECT_DOUBLE_EQ((*phi)[0], 5.0);
  LambdaGame zero(0, [](const std::vector<bool>&) { return 0.0; });
  auto empty = ExactShapley(zero);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(EdgeCases, TreeShapStumpAndSingleLeaf) {
  // Single-leaf "tree" (no splits): all attributions zero.
  Tree leaf_only;
  leaf_only.nodes.push_back({-1, 0.0, -1, -1, 3.5, 10.0});
  std::vector<double> phi(4, 0.0);
  TreeShapValues(leaf_only, {1, 2, 3, 4}, &phi);
  for (double v : phi) EXPECT_DOUBLE_EQ(v, 0.0);
  // Interventional variant likewise.
  std::vector<double> phi2(4, 0.0);
  InterventionalTreeShap(leaf_only, {1, 2, 3, 4}, {0, 0, 0, 0}, &phi2);
  for (double v : phi2) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, InterventionalTreeShapIdenticalReference) {
  // x == reference: every phi must be exactly zero (no divergent paths).
  Dataset ds = MakeGaussianDataset(200, {.seed = 4, .dims = 5});
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 10});
  ASSERT_TRUE(gbdt.ok());
  const std::vector<double> x = ds.row(0);
  std::vector<double> phi(5, 0.0);
  for (const Tree& t : gbdt->trees()) InterventionalTreeShap(t, x, x, &phi);
  for (double v : phi) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, DiceUnreachableClassFails) {
  // A constant model never flips: Dice must report NotFound, not hang.
  Dataset ds = MakeLoanDataset(200);
  auto constant = MakeLambdaModel(ds.d(), [](const std::vector<double>&) {
    return 0.1;
  });
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  DiceOptions opts;
  opts.num_candidates = 200;
  auto cfs = DiceCounterfactuals(constant, space, ds.row(0), 1, opts);
  EXPECT_FALSE(cfs.ok());
  EXPECT_EQ(cfs.status().code(), StatusCode::kNotFound);
}

TEST(EdgeCases, GecoFullyConstrainedFails) {
  // Every feature frozen: no real counterfactual can exist — even for an
  // instance the model already classifies as the desired class (the
  // unchanged instance must NOT be returned as a "counterfactual").
  Dataset ds = MakeLoanDataset(400);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 10});
  ASSERT_TRUE(gbdt.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  std::vector<PlafConstraint> freeze;
  for (size_t j = 0; j < ds.d(); ++j)
    freeze.push_back(PlafConstraint::Immutable(j, "f"));
  for (size_t i : {size_t{0}, size_t{1}, size_t{2}}) {
    auto cfs = GecoCounterfactuals(*gbdt, space, ds.row(i), 1, freeze, {});
    EXPECT_FALSE(cfs.ok()) << "row " << i;
  }
}

TEST(EdgeCases, DatasetSplitExtremes) {
  Dataset ds = MakeGaussianDataset(50, {.seed = 9, .dims = 2});
  Rng rng(1);
  auto [all_train, no_test] = ds.Split(1.0, &rng);
  EXPECT_EQ(all_train.n(), 50u);
  EXPECT_EQ(no_test.n(), 0u);
  Rng rng2(2);
  auto [no_train, all_test] = ds.Split(0.0, &rng2);
  EXPECT_EQ(no_train.n(), 0u);
  EXPECT_EQ(all_test.n(), 50u);
}

TEST(EdgeCases, EmptyMatrixOperations) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Transpose().rows(), 0u);
  Matrix g = m.Gram();
  EXPECT_EQ(g.rows(), 0u);
}

TEST(EdgeCases, ModelsRejectEmptyData) {
  Schema schema({FeatureSpec::Numeric("a")});
  Dataset empty(schema, Matrix(0, 1), {});
  EXPECT_FALSE(LogisticRegression::Fit(empty).ok());
  EXPECT_FALSE(GradientBoostedTrees::Fit(empty).ok());
  EXPECT_FALSE(DecisionTree::Fit(empty).ok());
  EXPECT_FALSE(RandomForest::Fit(empty).ok());
  EXPECT_FALSE(KnnClassifier::Fit(empty).ok());
}

TEST(EdgeCases, ConstantLabelsStillFit) {
  // Degenerate but legal: all-positive labels. Fits must not crash and
  // must predict confidently positive.
  Schema schema({FeatureSpec::Numeric("a")});
  Matrix x(20, 1);
  for (size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
  Dataset ds(schema, x, std::vector<double>(20, 1.0));
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 5});
  ASSERT_TRUE(gbdt.ok());
  EXPECT_GT(gbdt->Predict({3.0}), 0.9);
  auto logit = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(logit.ok());
  EXPECT_GT(logit->Predict({3.0}), 0.8);
}

TEST(EdgeCases, TreeShapExplainerArityMismatch) {
  Dataset ds = MakeLoanDataset(300);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 5});
  ASSERT_TRUE(gbdt.ok());
  TreeShapExplainer explainer(*gbdt, ds.schema());
  EXPECT_FALSE(explainer.Explain({1.0, 2.0}).ok());
}

}  // namespace
}  // namespace xai
