// Tests for the batched evaluation pipeline and its determinism contract:
// the ThreadPool itself (coverage, exceptions, nesting, shutdown), the
// counter-based chunk seeding, batch-vs-scalar model equivalence, and the
// headline guarantee — explainer output is bit-identical for any thread
// count at a fixed seed. Build with -DXAIDB_SANITIZE=thread and run
// `ctest -L parallel` to prove the sweeps race-free under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "core/game.h"
#include "data/synthetic.h"
#include "feature/kernel_shap.h"
#include "feature/lime.h"
#include "feature/shapley.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"

namespace xai {
namespace {

/// Restores the env/hardware thread default when a test body returns, so
/// no test leaks its SetGlobalThreads override into the rest of the run.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetGlobalThreads(0); }
};

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 7,
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SizeOneRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int sum = 0;
  // Inline execution: plain int accumulation is safe by construction.
  pool.ParallelFor(0, 100, 10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, SubmitAndWaitDrains) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.Submit([&] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.Submit([&] { count.fetch_add(1); });
    // No Wait(): shutdown itself must drain and join.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100, 5,
                                [&](size_t i) {
                                  if (i == 42)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must stay usable after an exceptional sweep.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, 1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInlineNoDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 8, 1, [&](size_t) {
    // A worker re-entering ParallelFor must not block on its own pool.
    GlobalPool();  // touching the global pool from a worker is also fine
    ThreadPool& self = pool;
    self.ParallelFor(0, 8, 1, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, GlobalThreadOverride) {
  ThreadCountGuard guard;
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreadCount(), 3u);
  EXPECT_EQ(GlobalPool().num_threads(), 3u);
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalThreadCount(), 1u);
  EXPECT_EQ(GlobalPool().num_threads(), 1u);
}

TEST(ChunkSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(ChunkSeed(7, 0), ChunkSeed(7, 0));
  EXPECT_NE(ChunkSeed(7, 0), ChunkSeed(7, 1));
  EXPECT_NE(ChunkSeed(7, 0), ChunkSeed(8, 0));
  // Streams from consecutive chunk indices should differ in many bits.
  const uint64_t diff = ChunkSeed(123, 4) ^ ChunkSeed(123, 5);
  EXPECT_GT(__builtin_popcountll(diff), 8);
}

// ---- batch-vs-scalar model equivalence (exact, not approximate) ----

TEST(PredictBatch, MatchesScalarBitForBit) {
  Dataset ds = MakeLoanDataset(300);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 25});
  ASSERT_TRUE(gbdt.ok());
  auto logistic = LogisticRegression::Fit(ds, {.lambda = 1e-3});
  ASSERT_TRUE(logistic.ok());
  auto forest = RandomForest::Fit(ds, {.num_trees = 15});
  ASSERT_TRUE(forest.ok());

  const Model* models[] = {&*gbdt, &*logistic, &*forest};
  for (const Model* m : models) {
    const std::vector<double> batch = m->PredictBatch(ds.x());
    ASSERT_EQ(batch.size(), ds.n());
    for (size_t i = 0; i < ds.n(); ++i)
      EXPECT_EQ(batch[i], m->Predict(ds.row(i))) << "row " << i;
  }
}

TEST(ValueBatch, MarginalGameMatchesValueBitForBit) {
  Dataset ds = MakeLoanDataset(200);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 15});
  ASSERT_TRUE(gbdt.ok());
  MarginalFeatureGame game(*gbdt, ds.x(), ds.row(0), 25);

  std::vector<std::vector<bool>> coalitions;
  Rng rng(11);
  for (int c = 0; c < 20; ++c) {
    std::vector<bool> s(game.num_players());
    for (size_t j = 0; j < s.size(); ++j) s[j] = rng.Next() & 1;
    coalitions.push_back(s);
  }
  const std::vector<double> batch = game.ValueBatch(coalitions);
  ASSERT_EQ(batch.size(), coalitions.size());
  for (size_t c = 0; c < coalitions.size(); ++c)
    EXPECT_EQ(batch[c], game.Value(coalitions[c])) << "coalition " << c;
}

TEST(ValueBatch, ConditionalGaussianGameMatchesValueBitForBit) {
  Dataset ds = MakeGaussianDataset(300, {.seed = 5, .dims = 6});
  auto logistic = LogisticRegression::Fit(ds, {.lambda = 1e-3});
  ASSERT_TRUE(logistic.ok());
  auto game = ConditionalGaussianGame::Create(*logistic, ds.x(), ds.row(3),
                                              /*samples_per_eval=*/16,
                                              /*seed=*/77);
  ASSERT_TRUE(game.ok());

  std::vector<std::vector<bool>> coalitions;
  Rng rng(13);
  for (int c = 0; c < 12; ++c) {
    std::vector<bool> s(game->num_players());
    for (size_t j = 0; j < s.size(); ++j) s[j] = rng.Next() & 1;
    coalitions.push_back(s);
  }
  coalitions.push_back(std::vector<bool>(game->num_players(), true));
  coalitions.push_back(std::vector<bool>(game->num_players(), false));

  const std::vector<double> batch = game->ValueBatch(coalitions);
  ASSERT_EQ(batch.size(), coalitions.size());
  // Per-coalition counter-derived RNG streams: batch order must not leak
  // into any coalition's draws.
  for (size_t c = 0; c < coalitions.size(); ++c)
    EXPECT_EQ(batch[c], game->Value(coalitions[c])) << "coalition " << c;
}

// ---- thread-count invariance: the headline determinism guarantee ----

class ParallelDeterminism : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = MakeLoanDataset(400);
    auto gbdt = GradientBoostedTrees::Fit(ds_, {.num_rounds = 20});
    ASSERT_TRUE(gbdt.ok());
    gbdt_ = std::make_unique<GradientBoostedTrees>(std::move(*gbdt));
  }
  void TearDown() override { SetGlobalThreads(0); }

  Dataset ds_;
  std::unique_ptr<GradientBoostedTrees> gbdt_;
};

TEST_F(ParallelDeterminism, McShapleyBitIdenticalAcrossThreadCounts) {
  auto run = [&] {
    MarginalFeatureGame game(*gbdt_, ds_.x(), ds_.row(0), 30);
    Rng rng(99);
    return PermutationShapley(game, 40, &rng);
  };
  SetGlobalThreads(1);
  const std::vector<double> serial = run();
  SetGlobalThreads(8);
  const std::vector<double> parallel = run();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t j = 0; j < serial.size(); ++j)
    EXPECT_EQ(serial[j], parallel[j]) << "feature " << j;
}

TEST_F(ParallelDeterminism, ExactShapleyBitIdenticalAcrossThreadCounts) {
  auto run = [&] {
    MarginalFeatureGame game(*gbdt_, ds_.x(), ds_.row(1), 20);
    auto phi = ExactShapley(game, 20);
    EXPECT_TRUE(phi.ok());
    return *phi;
  };
  SetGlobalThreads(1);
  const std::vector<double> serial = run();
  SetGlobalThreads(8);
  const std::vector<double> parallel = run();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t j = 0; j < serial.size(); ++j)
    EXPECT_EQ(serial[j], parallel[j]) << "feature " << j;
}

TEST_F(ParallelDeterminism, KernelShapBitIdenticalAcrossThreadCounts) {
  KernelShapOptions opts;
  opts.exact_up_to = 0;  // Force the sampled path (the parallel sweep).
  opts.num_samples = 256;
  opts.max_background = 25;
  opts.seed = 4321;
  auto run = [&] {
    KernelShapExplainer ks(*gbdt_, ds_, opts);
    auto attr = ks.Explain(ds_.row(2));
    EXPECT_TRUE(attr.ok());
    return attr->values;
  };
  SetGlobalThreads(1);
  const std::vector<double> serial = run();
  SetGlobalThreads(8);
  const std::vector<double> parallel = run();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t j = 0; j < serial.size(); ++j)
    EXPECT_EQ(serial[j], parallel[j]) << "feature " << j;
}

TEST_F(ParallelDeterminism, LimeBitIdenticalAcrossThreadCounts) {
  auto run = [&] {
    LimeExplainer lime(*gbdt_, ds_, {.num_samples = 600, .seed = 31});
    auto attr = lime.Explain(ds_.row(4));
    EXPECT_TRUE(attr.ok());
    return attr->values;
  };
  SetGlobalThreads(1);
  const std::vector<double> serial = run();
  SetGlobalThreads(8);
  const std::vector<double> parallel = run();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t j = 0; j < serial.size(); ++j)
    EXPECT_EQ(serial[j], parallel[j]) << "feature " << j;
}

}  // namespace
}  // namespace xai
