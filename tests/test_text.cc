#include <gtest/gtest.h>

#include <algorithm>

#include "model/gbdt.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "text/anchors_text.h"
#include "text/lime_text.h"
#include "text/text_data.h"
#include "text/vocab.h"

namespace xai {
namespace {

TEST(Tokenize, LowercasesAndSplitsOnNonAlnum) {
  auto toks = Tokenize("Great product!! Arrived on-time, 5 stars.");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0], "great");
  EXPECT_EQ(toks[3], "on");
  EXPECT_EQ(toks[4], "time");
  EXPECT_EQ(toks[5], "5");
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ...").empty());
}

TEST(Vocabulary, MinCountFilterAndLookup) {
  Vocabulary v = Vocabulary::Build({"a a b", "a c", "b d"}, 2);
  // a: 3, b: 2 kept; c, d dropped.
  EXPECT_EQ(v.size(), 2u);
  EXPECT_GE(v.WordId("a"), 0);
  EXPECT_GE(v.WordId("b"), 0);
  EXPECT_EQ(v.WordId("c"), -1);
  EXPECT_EQ(v.WordId("zzz"), -1);
  EXPECT_EQ(v.word(static_cast<size_t>(v.WordId("a"))), "a");
}

TEST(BowVectorizer, CountsWords) {
  Vocabulary v = Vocabulary::Build({"red red blue", "blue green"}, 1);
  BowVectorizer bow(v);
  std::vector<double> x = bow.Transform("red blue red unknown");
  EXPECT_DOUBLE_EQ(x[static_cast<size_t>(v.WordId("red"))], 2.0);
  EXPECT_DOUBLE_EQ(x[static_cast<size_t>(v.WordId("blue"))], 1.0);
  EXPECT_DOUBLE_EQ(x[static_cast<size_t>(v.WordId("green"))], 0.0);
}

TEST(ReviewCorpus, SentimentModelIsLearnable) {
  TextCorpus corpus = MakeReviewCorpus(1500);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  Rng rng(1);
  auto [train, test] = ds.Split(0.8, &rng);
  auto model = LogisticRegression::Fit(train, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateAccuracy(*model, test), 0.82);
  // The learned weights separate the known signal words.
  for (const std::string& word : PositiveSignalWords()) {
    const int id = vocab.WordId(word);
    if (id >= 0) {
      EXPECT_GT(model->theta()[static_cast<size_t>(id)], 0.0) << word;
    }
  }
  for (const std::string& word : NegativeSignalWords()) {
    const int id = vocab.WordId(word);
    if (id >= 0) {
      EXPECT_LT(model->theta()[static_cast<size_t>(id)], 0.0) << word;
    }
  }
}

TEST(LimeText, IdentifiesSignalWords) {
  TextCorpus corpus = MakeReviewCorpus(1500);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());

  LimeTextExplainer lime(*model, bow, {.num_samples = 600});
  const std::string doc =
      "the product arrived on time and it was excellent i love it";
  auto attr = lime.Explain(doc);
  ASSERT_TRUE(attr.ok());
  EXPECT_GT(attr->prediction, 0.5);
  // The top word must be one of the sentiment carriers in the document.
  const std::string top = attr->words[attr->TopWords(1)[0]];
  EXPECT_TRUE(top == "excellent" || top == "love") << "top word: " << top;
  // And its weight must be positive (pushes toward the positive class).
  EXPECT_GT(attr->weights[attr->TopWords(1)[0]], 0.0);
}

TEST(LimeText, NegativeReviewNegativeWords) {
  TextCorpus corpus = MakeReviewCorpus(1500);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());
  LimeTextExplainer lime(*model, bow, {.num_samples = 600});
  auto attr = lime.Explain("the box arrived broken what a waste i want a refund");
  ASSERT_TRUE(attr.ok());
  EXPECT_LT(attr->prediction, 0.5);
  const std::string top = attr->words[attr->TopWords(1)[0]];
  EXPECT_TRUE(top == "broken" || top == "waste" || top == "refund")
      << "top word: " << top;
  EXPECT_LT(attr->weights[attr->TopWords(1)[0]], 0.0);
}

TEST(LimeText, RejectsOovOnlyDocument) {
  TextCorpus corpus = MakeReviewCorpus(300);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());
  LimeTextExplainer lime(*model, bow);
  EXPECT_FALSE(lime.Explain("xyzzy qwerty plugh").ok());
}

TEST(LimeText, WorksWithTreeModelsToo) {
  // Model-agnosticism: same explainer over a GBDT on the same BoW.
  TextCorpus corpus = MakeReviewCorpus(1200);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  ASSERT_TRUE(model.ok());
  LimeTextExplainer lime(*model, bow, {.num_samples = 500});
  auto attr = lime.Explain("excellent product i love it");
  ASSERT_TRUE(attr.ok());
  EXPECT_FALSE(attr->words.empty());
  EXPECT_NE(attr->ToString().find("prediction"), std::string::npos);
}

TEST(TextAnchors, FindsSentimentWordAnchor) {
  TextCorpus corpus = MakeReviewCorpus(1500);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());

  const std::string doc =
      "the product arrived on time it was excellent i love it";
  auto anchor = ExplainTextWithAnchor(*model, bow, doc,
                                      {.precision_threshold = 0.9});
  ASSERT_TRUE(anchor.ok());
  EXPECT_DOUBLE_EQ(anchor->outcome, 1.0);
  EXPECT_GT(anchor->precision, 0.85);
  EXPECT_LE(anchor->words.size(), 3u);
  ASSERT_FALSE(anchor->words.empty());
  // The anchor must contain at least one sentiment word, not filler.
  bool has_signal = false;
  for (const std::string& w : anchor->words)
    if (w == "excellent" || w == "love") has_signal = true;
  EXPECT_TRUE(has_signal) << anchor->ToString();
  EXPECT_NE(anchor->ToString().find("IF document contains"),
            std::string::npos);
}

TEST(TextAnchors, RejectsOovDocument) {
  TextCorpus corpus = MakeReviewCorpus(300);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(ExplainTextWithAnchor(*model, bow, "qwerty xyzzy").ok());
}

}  // namespace
}  // namespace xai
