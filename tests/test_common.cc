#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace xai {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

Result<int> Half(int x) {
  if (x % 2) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  XAI_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, ValueAndErrorPropagation) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value_or(-1), 5);

  Result<int> e = Half(3);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.value_or(-1), -1);

  EXPECT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd.
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(43);
  EXPECT_NE(Rng(42).Next(), c.Next());
}

TEST(Rng, UniformMomentsRoughlyCorrect) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NextIntInRangeAndCoversAll) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(17);
  std::vector<size_t> p = rng.Permutation(50);
  std::vector<size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  std::vector<size_t> s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 4000.0, 0.75, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(29);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(StrUtil, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StrUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtil, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

}  // namespace
}  // namespace xai
