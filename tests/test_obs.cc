// Tests for the observability subsystem: counter/gauge/histogram
// correctness, quantile estimates on known distributions, span
// nesting/parenting, concurrent increments, exporters, and the
// off-switch being a true no-op.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace xai {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

/// Every test starts from a clean, enabled registry and leaves metrics
/// disabled (matching the default for the rest of the test binaries).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    MetricsRegistry::Global().ResetAll();
    obs::SetEnabled(false);
  }
};

TEST_F(ObsTest, CounterAddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(ObsTest, GaugeLastWriterWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.Value(), -2.25);
}

TEST_F(ObsTest, RegistryReturnsStablePointers) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.obs.stable");
  Counter* b = reg.GetCounter("test.obs.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("test.obs.other"));
}

TEST_F(ObsTest, HistogramCountSumAndBuckets) {
  Histogram h;
  h.Observe(1.0);    // Bucket 0 (<= 1).
  h.Observe(2.0);    // Bucket 1 (<= 2).
  h.Observe(3.0);    // Bucket 2 (<= 4).
  h.Observe(1000.0); // Bucket 10 (<= 1024).
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.0);
  const std::vector<uint64_t> buckets = h.BucketCounts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[10], 1u);
}

TEST_F(ObsTest, HistogramQuantilesOnKnownUniform) {
  // Uniform 1..1000: median 500.5 lies in bucket (256, 512]; p99 ~ 990
  // lies in (512, 1024]. Power-of-two buckets bound the estimate to the
  // containing bucket, so assert bucket-level correctness.
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Observe(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  // Degenerate distribution: all mass in one bucket.
  Histogram one;
  for (int i = 0; i < 100; ++i) one.Observe(100.0);
  const double q = one.Quantile(0.5);
  EXPECT_GE(q, 64.0);
  EXPECT_LE(q, 128.0);
  // Empty histogram reports 0.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST_F(ObsTest, QuantileInterpolatesWithinWinningBucket) {
  // Regression: quantiles interpolate linearly inside the winning bucket
  // rather than snapping to its upper bound. Uniform 1..1000 puts rank
  // 500 of 1000 at fraction (500-256)/256 of bucket (256, 512] —
  // exactly 500.0, not the bound 512.
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Observe(static_cast<double>(v));
  const double p50 = h.Quantile(0.5);
  EXPECT_DOUBLE_EQ(p50, 500.0);
  EXPECT_LT(p50, 512.0);

  // The shared static path (used by the sampler on per-window bucket
  // deltas) agrees with the member on the same counts, and interpolates
  // a half-full bucket to its midpoint: 100 observations in (64, 128],
  // q=0.5 → 96.
  EXPECT_DOUBLE_EQ(Histogram::QuantileFromCounts(h.BucketCounts(), 0.5),
                   p50);
  std::vector<uint64_t> counts(8, 0);
  counts[7] = 100;  // bucket (64, 128]
  EXPECT_DOUBLE_EQ(Histogram::QuantileFromCounts(counts, 0.5), 96.0);
  // First bucket interpolates from 0; empty counts report 0.
  std::vector<uint64_t> first(3, 0);
  first[0] = 10;  // bucket (0, 1]
  EXPECT_DOUBLE_EQ(Histogram::QuantileFromCounts(first, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(Histogram::QuantileFromCounts({0, 0, 0}, 0.9), 0.0);
}

TEST_F(ObsTest, SpanNestingBuildsParentChildPaths) {
  {
    XAI_OBS_SPAN("outer");
    {
      XAI_OBS_SPAN("inner");
    }
    {
      XAI_OBS_SPAN("inner");
    }
  }
  {
    XAI_OBS_SPAN("outer");
  }
  const auto spans = obs::SpanSnapshot();
  ASSERT_TRUE(spans.count("outer"));
  ASSERT_TRUE(spans.count("outer/inner"));
  EXPECT_EQ(spans.at("outer").count, 2u);
  EXPECT_EQ(spans.at("outer").depth, 0);
  EXPECT_EQ(spans.at("outer/inner").count, 2u);
  EXPECT_EQ(spans.at("outer/inner").depth, 1);
  // Parent wall time covers its children.
  EXPECT_GE(spans.at("outer").total_ms, spans.at("outer/inner").total_ms);
}

TEST_F(ObsTest, ConcurrentCounterIncrementsFromEightThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  Counter* c = MetricsRegistry::Global().GetCounter("test.obs.concurrent");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, ConcurrentHistogramAndSpansFromEightThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.obs.hist");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<double>(t * kPerThread + i));
        XAI_OBS_SPAN("worker");
        XAI_OBS_COUNT("test.obs.span_body");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  const auto spans = obs::SpanSnapshot();
  ASSERT_TRUE(spans.count("worker"));
  EXPECT_EQ(spans.at("worker").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counters.at("test.obs.span_body"),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, OffSwitchIsATrueNoOp) {
  obs::SetEnabled(false);
  XAI_OBS_COUNT("test.obs.off_counter");
  XAI_OBS_COUNT_N("test.obs.off_counter", 41);
  XAI_OBS_GAUGE_SET("test.obs.off_gauge", 7.0);
  XAI_OBS_OBSERVE("test.obs.off_hist", 123.0);
  {
    XAI_OBS_SPAN("off_span");
  }
  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  // The macros never touched the registry: the names were not even
  // registered, and no span path was recorded.
  EXPECT_EQ(snap.counters.count("test.obs.off_counter"), 0u);
  EXPECT_EQ(snap.gauges.count("test.obs.off_gauge"), 0u);
  EXPECT_EQ(snap.histograms.count("test.obs.off_hist"), 0u);
  EXPECT_EQ(obs::SpanSnapshot().count("off_span"), 0u);
}

TEST_F(ObsTest, MacrosRecordWhenEnabled) {
  XAI_OBS_COUNT_N("test.obs.on_counter", 3);
  XAI_OBS_COUNT("test.obs.on_counter");
  XAI_OBS_GAUGE_SET("test.obs.on_gauge", 2.5);
  XAI_OBS_OBSERVE("test.obs.on_hist", 10.0);
  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counters.at("test.obs.on_counter"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.obs.on_gauge"), 2.5);
  EXPECT_EQ(snap.histograms.at("test.obs.on_hist").count, 1u);
}

TEST_F(ObsTest, ResetAllZeroesButKeepsRegistrations) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.obs.reset");
  c->Add(9);
  {
    XAI_OBS_SPAN("reset_span");
  }
  MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counters.at("test.obs.reset"), 0u);
  const auto spans = obs::SpanSnapshot();
  ASSERT_TRUE(spans.count("reset_span"));
  EXPECT_EQ(spans.at("reset_span").count, 0u);
}

TEST_F(ObsTest, JsonExportContainsAllSections) {
  XAI_OBS_COUNT_N("test.obs.json_counter", 12);
  XAI_OBS_OBSERVE("test.obs.json_hist", 5.0);
  {
    XAI_OBS_SPAN("json_span");
  }
  const std::string json = obs::MetricsToJson();
  EXPECT_NE(json.find("\"test.obs.json_counter\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  // Structurally valid: braces and brackets balance.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsTest, TableExportListsMetrics) {
  XAI_OBS_COUNT("test.obs.table_counter");
  const std::string table = obs::MetricsToTable();
  EXPECT_NE(table.find("test.obs.table_counter"), std::string::npos);
  EXPECT_NE(table.find("counters:"), std::string::npos);
}

TEST_F(ObsTest, WriteMetricsJsonRoundTripsAndGuardsBadPaths) {
  XAI_OBS_COUNT("test.obs.file_counter");
  const std::string path = "/tmp/xai_obs_test_metrics.json";
  Status ok = obs::WriteMetricsJson(path);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("test.obs.file_counter"), std::string::npos);

  // Unwritable path: explicit kIOError, not a silent drop.
  Status bad = obs::WriteMetricsJson("/nonexistent_dir_xai/metrics.json");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kIOError);
  // Empty path: rejected before touching the filesystem.
  Status empty = obs::WriteMetricsJson("");
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
}

TEST_F(ObsTest, StopwatchMeasuresMonotonically) {
  obs::Stopwatch w;
  const double a = w.ElapsedMs();
  const double b = w.ElapsedMs();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  w.Reset();
  EXPECT_GE(w.ElapsedMs(), 0.0);
}

TEST_F(ObsTest, ScopedHistogramTimerRecordsMicroseconds) {
  {
    obs::ScopedHistogramTimer t("test.obs.timer_us");
  }
  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  ASSERT_TRUE(snap.histograms.count("test.obs.timer_us"));
  EXPECT_EQ(snap.histograms.at("test.obs.timer_us").count, 1u);
}

}  // namespace
}  // namespace xai
