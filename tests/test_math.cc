#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "math/combinatorics.h"
#include "math/gaussian.h"
#include "math/linalg.h"
#include "math/matrix.h"
#include "math/stats.h"

namespace xai {
namespace {

TEST(Matrix, BasicOps) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);

  Matrix t = a.Transpose();
  EXPECT_DOUBLE_EQ(t(0, 1), 3);
  std::vector<double> v = a * std::vector<double>{1.0, -1.0};
  EXPECT_DOUBLE_EQ(v[0], -1);
  EXPECT_DOUBLE_EQ(v[1], -1);

  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 12);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4);
}

TEST(Matrix, GramAndTransposeTimes) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  Matrix g = a.Gram();
  Matrix expected = a.Transpose() * a;
  EXPECT_LT(g.MaxAbsDiff(expected), 1e-12);
  std::vector<double> v = {1, 1, 1};
  std::vector<double> atv = a.TransposeTimes(v);
  EXPECT_DOUBLE_EQ(atv[0], 9);
  EXPECT_DOUBLE_EQ(atv[1], 12);
}

TEST(Matrix, SelectAndAppend) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix rows = a.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(rows(0, 0), 7);
  EXPECT_DOUBLE_EQ(rows(1, 2), 3);
  Matrix cols = a.SelectCols({1});
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_DOUBLE_EQ(cols(2, 0), 8);
  Matrix m;
  m.AppendRow({1, 2});
  m.AppendRow({3, 4});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
}

TEST(Linalg, CholeskySolveRoundTrip) {
  // SPD matrix A = B B^T + I.
  Rng rng(1);
  const size_t n = 8;
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.Gaussian();
  Matrix a = b * b.Transpose();
  for (size_t i = 0; i < n; ++i) a(i, i) += 1.0;

  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.Gaussian();
  std::vector<double> rhs = a * x_true;
  auto x = SolveSpd(a, rhs);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
}

TEST(Linalg, CholeskyRejectsNonSpd) {
  Matrix a = {{1, 2}, {2, 1}};  // Indefinite.
  EXPECT_FALSE(Cholesky(a).ok());
  EXPECT_FALSE(Cholesky(Matrix(2, 3)).ok());
}

TEST(Linalg, InverseSpd) {
  Matrix a = {{4, 1}, {1, 3}};
  auto inv = InverseSpd(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a * (*inv);
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(2)), 1e-12);
}

TEST(Linalg, SolveLuGeneral) {
  Matrix a = {{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};  // Needs pivoting.
  std::vector<double> x_true = {1.0, -2.0, 3.0};
  std::vector<double> rhs = a * x_true;
  auto x = SolveLu(a, rhs);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-10);
  Matrix sing = {{1, 2}, {2, 4}};
  EXPECT_FALSE(SolveLu(sing, {1, 1}).ok());
}

TEST(Linalg, ConjugateGradientMatchesCholesky) {
  Rng rng(3);
  const size_t n = 10;
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.Gaussian();
  Matrix a = b * b.Transpose();
  for (size_t i = 0; i < n; ++i) a(i, i) += 2.0;
  std::vector<double> rhs(n);
  for (auto& v : rhs) v = rng.Gaussian();
  auto direct = SolveSpd(a, rhs);
  ASSERT_TRUE(direct.ok());
  std::vector<double> cg = ConjugateGradient(a, rhs, 200, 1e-12);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(cg[i], (*direct)[i], 1e-8);
}

TEST(Linalg, RidgeRegressionRecoversWeights) {
  Rng rng(5);
  const size_t n = 300;
  const size_t d = 4;
  std::vector<double> w = {2.0, -1.0, 0.5, 3.0};
  Matrix x(n, d);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0;
    for (size_t j = 0; j < d; ++j) {
      x(i, j) = rng.Gaussian();
      s += w[j] * x(i, j);
    }
    y[i] = s + rng.Gaussian(0, 0.01);
  }
  auto coef = RidgeRegression(x, y, 1e-8);
  ASSERT_TRUE(coef.ok());
  for (size_t j = 0; j < d; ++j) EXPECT_NEAR((*coef)[j], w[j], 0.01);
}

TEST(Linalg, RidgeRegressionWeighted) {
  // Two clusters of points fitting different lines; weights select one.
  Matrix x = {{1}, {2}, {3}, {1}, {2}, {3}};
  std::vector<double> y = {2, 4, 6, -1, -2, -3};  // Slopes 2 and -1.
  std::vector<double> w = {1, 1, 1, 0, 0, 0};
  auto coef = RidgeRegression(x, y, 1e-10, &w);
  ASSERT_TRUE(coef.ok());
  EXPECT_NEAR((*coef)[0], 2.0, 1e-6);
}

TEST(Linalg, ShermanMorrisonMatchesDirectInverse) {
  Rng rng(9);
  const size_t n = 6;
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.Gaussian();
  Matrix a = b * b.Transpose();
  for (size_t i = 0; i < n; ++i) a(i, i) += 3.0;
  auto ainv = InverseSpd(a);
  ASSERT_TRUE(ainv.ok());

  std::vector<double> u(n);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    u[i] = rng.Gaussian() * 0.3;
    v[i] = rng.Gaussian() * 0.3;
  }
  Matrix updated_inv = *ainv;
  ASSERT_TRUE(ShermanMorrisonUpdate(&updated_inv, u, v).ok());

  // Direct: inverse of A + u v^T.
  Matrix a2 = a;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) a2(i, j) += u[i] * v[j];
  // A + uv^T is not symmetric; check with LU solves column by column.
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> e(n, 0.0);
    e[j] = 1.0;
    auto col = SolveLu(a2, e);
    ASSERT_TRUE(col.ok());
    for (size_t i = 0; i < n; ++i)
      EXPECT_NEAR(updated_inv(i, j), (*col)[i], 1e-8);
  }
}

TEST(Stats, Basics) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 2.5);
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(Stats, Correlations) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  // Monotone nonlinear: Spearman 1, Pearson < 1.
  std::vector<double> d = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(a, d), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(a, d), 1.0);
  // Constant vector.
  std::vector<double> e = {1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, e), 0.0);
}

TEST(Stats, RanksWithTies) {
  std::vector<double> v = {10, 20, 20, 30};
  std::vector<double> r = Ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, JaccardAndTopK) {
  EXPECT_DOUBLE_EQ(Jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(Jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({1}, {2}), 0.0);
  std::vector<double> v = {0.1, -5.0, 2.0, 0.0};
  auto top = TopKByMagnitude(v, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
}

TEST(Stats, OnlineMomentsMatchBatch) {
  Rng rng(33);
  std::vector<double> v(500);
  OnlineMoments om;
  for (auto& x : v) {
    x = rng.Gaussian(3.0, 2.0);
    om.Add(x);
  }
  EXPECT_NEAR(om.mean(), Mean(v), 1e-10);
  EXPECT_NEAR(om.variance(), Variance(v), 1e-8);
}

TEST(Stats, SigmoidStable) {
  EXPECT_NEAR(Sigmoid(0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(1000), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000), 0.0, 1e-12);
  EXPECT_NEAR(Log1pExp(0), std::log(2.0), 1e-12);
  EXPECT_NEAR(Log1pExp(100), 100.0, 1e-9);
  EXPECT_NEAR(Log1pExp(-100), 0.0, 1e-12);
}

TEST(Combinatorics, BinomialAndFactorial) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 5), 0.0);
  EXPECT_DOUBLE_EQ(Factorial(5), 120.0);
}

TEST(Combinatorics, ShapleyWeightsSumToOne) {
  // sum over S subseteq N\{i} of w(|S|) = 1.
  for (int n = 1; n <= 10; ++n) {
    double total = 0.0;
    for (int s = 0; s < n; ++s)
      total += BinomialCoefficient(n - 1, s) * ShapleyWeight(n, s);
    EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n;
  }
}

TEST(Combinatorics, SubsetEnumeration) {
  auto subsets = AllSubsets(3);
  EXPECT_EQ(subsets.size(), 8u);
  EXPECT_EQ(PopCount(0b101), 2);
  auto idx = MaskToIndices(0b101, 3);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 2);
}

TEST(Gaussian, FitRecoversMoments) {
  Rng rng(77);
  const size_t n = 20000;
  Matrix rows(n, 2);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Gaussian();
    const double b = 0.8 * a + 0.6 * rng.Gaussian();
    rows(i, 0) = 1.0 + a;
    rows(i, 1) = -2.0 + b;
  }
  auto g = MultivariateGaussian::Fit(rows);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->mean()[0], 1.0, 0.05);
  EXPECT_NEAR(g->mean()[1], -2.0, 0.05);
  EXPECT_NEAR(g->cov()(0, 1), 0.8, 0.05);
}

TEST(Gaussian, ConditionalMatchesClosedForm) {
  // X ~ N(0, [[1, rho], [rho, 1]]): E[X2 | X1 = a] = rho * a,
  // Var = 1 - rho^2.
  const double rho = 0.7;
  Matrix cov = {{1.0, rho}, {rho, 1.0}};
  auto g = MultivariateGaussian::Create({0.0, 0.0}, cov);
  ASSERT_TRUE(g.ok());
  auto cond = g->Condition({0}, {2.0});
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR(cond->mean()[0], rho * 2.0, 1e-9);
  EXPECT_NEAR(cond->cov()(0, 0), 1.0 - rho * rho, 1e-6);
}

TEST(Gaussian, SampleMatchesDistribution) {
  Matrix cov = {{2.0, 0.5}, {0.5, 1.0}};
  auto g = MultivariateGaussian::Create({1.0, -1.0}, cov);
  ASSERT_TRUE(g.ok());
  Rng rng(123);
  OnlineMoments m0;
  OnlineMoments m1;
  double cross = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto s = g->Sample(&rng);
    m0.Add(s[0]);
    m1.Add(s[1]);
    cross += (s[0] - 1.0) * (s[1] + 1.0);
  }
  EXPECT_NEAR(m0.mean(), 1.0, 0.05);
  EXPECT_NEAR(m1.mean(), -1.0, 0.05);
  EXPECT_NEAR(m0.variance(), 2.0, 0.1);
  EXPECT_NEAR(cross / n, 0.5, 0.05);
}

}  // namespace
}  // namespace xai
