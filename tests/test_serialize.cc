#include <gtest/gtest.h>

#include <cstdio>

#include "data/synthetic.h"
#include "feature/tree_shap.h"
#include "model/serialize.h"

namespace xai {
namespace {

TEST(Serialize, LinearRoundTrip) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(200, 5, 3, &w);
  auto model = LinearRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  const std::string path = "/tmp/xai_model_linear.txt";
  ASSERT_TRUE(SaveModel(*model, path).ok());
  EXPECT_EQ(*PeekModelType(path), "linear");
  auto loaded = LoadLinearRegression(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(loaded->Predict(ds.row(i)), model->Predict(ds.row(i)));
  EXPECT_DOUBLE_EQ(loaded->lambda(), model->lambda());
  std::remove(path.c_str());
}

TEST(Serialize, LogisticRoundTrip) {
  Dataset ds = MakeGaussianDataset(300, {.seed = 5, .dims = 4});
  auto model = LogisticRegression::Fit(ds, {.lambda = 0.01});
  ASSERT_TRUE(model.ok());
  const std::string path = "/tmp/xai_model_logistic.txt";
  ASSERT_TRUE(SaveModel(*model, path).ok());
  EXPECT_EQ(*PeekModelType(path), "logistic");
  auto loaded = LoadLogisticRegression(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(loaded->Predict(ds.row(i)), model->Predict(ds.row(i)));
  std::remove(path.c_str());
}

TEST(Serialize, GbdtRoundTripBitExact) {
  Dataset ds = MakeLoanDataset(800);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 25});
  ASSERT_TRUE(model.ok());
  const std::string path = "/tmp/xai_model_gbdt.txt";
  ASSERT_TRUE(SaveModel(*model, path).ok());
  EXPECT_EQ(*PeekModelType(path), "gbdt");
  auto loaded = LoadGbdt(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->trees().size(), model->trees().size());
  EXPECT_EQ(loaded->num_features(), model->num_features());
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(loaded->Predict(ds.row(i)), model->Predict(ds.row(i)));
    EXPECT_DOUBLE_EQ(loaded->PredictMargin(ds.row(i)),
                     model->PredictMargin(ds.row(i)));
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadedGbdtExplainsIdentically) {
  // The whole point of persistence: explanations after reload match.
  Dataset ds = MakeLoanDataset(600);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 20});
  ASSERT_TRUE(model.ok());
  const std::string path = "/tmp/xai_model_gbdt2.txt";
  ASSERT_TRUE(SaveModel(*model, path).ok());
  auto loaded = LoadGbdt(path);
  ASSERT_TRUE(loaded.ok());
  TreeShapExplainer e1(*model, ds.schema());
  TreeShapExplainer e2(*loaded, ds.schema());
  auto a1 = e1.Explain(ds.row(2));
  auto a2 = e2.Explain(ds.row(2));
  ASSERT_TRUE(a1.ok() && a2.ok());
  for (size_t j = 0; j < ds.d(); ++j)
    EXPECT_DOUBLE_EQ(a1->values[j], a2->values[j]);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage) {
  const std::string path = "/tmp/xai_model_garbage.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a model\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadGbdt(path).ok());
  EXPECT_FALSE(PeekModelType(path).ok());
  EXPECT_FALSE(LoadGbdt("/nonexistent/m.txt").ok());
  // Wrong type dispatch.
  Dataset ds = MakeGaussianDataset(100, {.seed = 1, .dims = 2});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(SaveModel(*model, path).ok());
  EXPECT_FALSE(LoadGbdt(path).ok());
  EXPECT_TRUE(LoadLogisticRegression(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xai
