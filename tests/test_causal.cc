#include <gtest/gtest.h>

#include "causal/dag.h"
#include "causal/scm.h"
#include "math/stats.h"

namespace xai {
namespace {

Dag ChainDag() {
  Dag dag;
  (void)*dag.AddNode("a");
  (void)*dag.AddNode("b");
  (void)*dag.AddNode("c");
  EXPECT_TRUE(dag.AddEdge(0, 1).ok());
  EXPECT_TRUE(dag.AddEdge(1, 2).ok());
  return dag;
}

TEST(Dag, NodesAndEdges) {
  Dag dag = ChainDag();
  EXPECT_EQ(dag.num_nodes(), 3u);
  EXPECT_TRUE(dag.HasEdge(0, 1));
  EXPECT_FALSE(dag.HasEdge(0, 2));
  EXPECT_EQ(*dag.NodeIndex("b"), 1u);
  EXPECT_FALSE(dag.NodeIndex("zz").ok());
  EXPECT_FALSE(dag.AddNode("a").ok());  // Duplicate.
  EXPECT_FALSE(dag.AddEdge(1, 1).ok());  // Self.
  EXPECT_FALSE(dag.AddEdge(0, 1).ok());  // Duplicate edge.
}

TEST(Dag, CycleRejection) {
  Dag dag = ChainDag();
  EXPECT_FALSE(dag.AddEdge(2, 0).ok());
  EXPECT_FALSE(dag.AddEdge(1, 0).ok());
  EXPECT_TRUE(dag.AddEdge(0, 2).ok());  // Forward edge fine.
}

TEST(Dag, TopologicalOrderAndAncestry) {
  Dag dag;
  (void)*dag.AddNode("x");
  (void)*dag.AddNode("y");
  (void)*dag.AddNode("z");
  (void)*dag.AddNode("w");
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  ASSERT_TRUE(dag.AddEdge(2, 3).ok());
  auto order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < 4; ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[2], pos[3]);

  EXPECT_TRUE(dag.IsAncestor(0, 3));
  EXPECT_FALSE(dag.IsAncestor(3, 0));
  auto anc = dag.Ancestors(3);
  EXPECT_EQ(anc.size(), 3u);
  auto desc = dag.Descendants(0);
  ASSERT_EQ(desc.size(), 2u);
  EXPECT_EQ(desc[0], 2u);
  EXPECT_EQ(desc[1], 3u);
}

Scm ChainScm(double b01 = 2.0, double b12 = -1.5) {
  Scm scm(ChainDag());
  EXPECT_TRUE(scm.SetLinearEquation(0, {}, 1.0, 1.0).ok());
  EXPECT_TRUE(scm.SetLinearEquation(1, {b01}, 0.5, 0.5).ok());
  EXPECT_TRUE(scm.SetLinearEquation(2, {b12}, -0.25, 0.25).ok());
  return scm;
}

TEST(Scm, ObservationalMeansMatchAnalytic) {
  Scm scm = ChainScm();
  std::vector<double> mean;
  Matrix cov;
  ASSERT_TRUE(scm.AnalyticMeanCov(&mean, &cov).ok());
  // mean_a = 1; mean_b = 0.5 + 2*1 = 2.5; mean_c = -0.25 - 1.5*2.5 = -4.
  EXPECT_NEAR(mean[0], 1.0, 1e-12);
  EXPECT_NEAR(mean[1], 2.5, 1e-12);
  EXPECT_NEAR(mean[2], -4.0, 1e-12);
  // var_a = 1; var_b = 4*1 + 0.25 = 4.25.
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.25, 1e-12);
  // cov(a, b) = 2.
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);

  // Monte-Carlo agreement.
  Rng rng(9);
  OnlineMoments mb;
  for (int i = 0; i < 20000; ++i) mb.Add(scm.Sample(&rng)[1]);
  EXPECT_NEAR(mb.mean(), 2.5, 0.05);
  EXPECT_NEAR(mb.variance(), 4.25, 0.15);
}

TEST(Scm, InterventionSeversParents) {
  Scm scm = ChainScm();
  Rng rng(11);
  // do(b = 10): a unaffected, c responds to b = 10.
  OnlineMoments ma;
  OnlineMoments mc;
  for (int i = 0; i < 20000; ++i) {
    auto s = scm.SampleDo({{1, 10.0}}, &rng);
    EXPECT_DOUBLE_EQ(s[1], 10.0);
    ma.Add(s[0]);
    mc.Add(s[2]);
  }
  EXPECT_NEAR(ma.mean(), 1.0, 0.05);  // Upstream unchanged.
  EXPECT_NEAR(mc.mean(), -0.25 - 1.5 * 10.0, 0.05);  // Downstream responds.
}

TEST(Scm, InterventionVsConditioningDiffer) {
  // Confounder: z -> x, z -> y. Intervening on x does NOT move y;
  // conditioning on x would (they correlate through z).
  Dag dag;
  (void)*dag.AddNode("z");
  (void)*dag.AddNode("x");
  (void)*dag.AddNode("y");
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  Scm scm(std::move(dag));
  ASSERT_TRUE(scm.SetLinearEquation(0, {}, 0.0, 1.0).ok());
  ASSERT_TRUE(scm.SetLinearEquation(1, {1.0}, 0.0, 0.1).ok());
  ASSERT_TRUE(scm.SetLinearEquation(2, {1.0}, 0.0, 0.1).ok());
  Rng rng(13);
  const double ey_do5 = scm.ExpectationDo(
      {{1, 5.0}}, [](const std::vector<double>& s) { return s[2]; }, 20000,
      &rng);
  EXPECT_NEAR(ey_do5, 0.0, 0.05);  // do(x) severs the path: y ~ N(0, .).
}

TEST(Scm, NonLinearEquations) {
  Dag dag;
  (void)*dag.AddNode("a");
  (void)*dag.AddNode("b");
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  Scm scm(std::move(dag));
  ASSERT_TRUE(scm.SetLinearEquation(0, {}, 2.0, 0.0).ok());
  ASSERT_TRUE(scm.SetEquation(
                     1,
                     [](const std::vector<double>& p) {
                       return p[0] * p[0];
                     },
                     0.0)
                  .ok());
  Rng rng(1);
  auto s = scm.Sample(&rng);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 4.0);
  // Analytic path must reject non-linear SCMs.
  std::vector<double> mean;
  Matrix cov;
  EXPECT_FALSE(scm.AnalyticMeanCov(&mean, &cov).ok());
  // Noise-free equation evaluation.
  EXPECT_DOUBLE_EQ(scm.EvaluateEquation(1, {3.0}), 9.0);
}

TEST(Scm, CompletenessAndValidation) {
  Scm scm(ChainDag());
  EXPECT_FALSE(scm.IsComplete());
  EXPECT_FALSE(scm.SetLinearEquation(0, {1.0}, 0, 1).ok());  // No parents.
  EXPECT_FALSE(scm.SetLinearEquation(7, {}, 0, 1).ok());     // Bad node.
  ASSERT_TRUE(scm.SetLinearEquation(0, {}, 0, 1).ok());
  ASSERT_TRUE(scm.SetLinearEquation(1, {1.0}, 0, 1).ok());
  ASSERT_TRUE(scm.SetLinearEquation(2, {1.0}, 0, 1).ok());
  EXPECT_TRUE(scm.IsComplete());
}

}  // namespace
}  // namespace xai
