#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "data/synthetic.h"
#include "model/gbdt.h"
#include "rule/anchors.h"
#include "rule/decision_set.h"
#include "rule/itemset.h"

namespace xai {
namespace {

std::vector<Transaction> ToyTransactions() {
  // Classic basket example (items as raw codes).
  return {
      {1, 2, 3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}, {2}, {3},
  };
}

TEST(Itemset, AprioriSupportsAreExact) {
  auto itemsets = AprioriMine(ToyTransactions(), 2, 3);
  std::map<std::vector<Item>, size_t> sup;
  for (const auto& fi : itemsets) sup[fi.items] = fi.support;
  EXPECT_EQ((sup[{1}]), 4u);
  EXPECT_EQ((sup[{2}]), 5u);
  EXPECT_EQ((sup[{3}]), 5u);
  EXPECT_EQ((sup[{1, 2}]), 3u);
  EXPECT_EQ((sup[{1, 3}]), 3u);
  EXPECT_EQ((sup[{2, 3}]), 3u);
  EXPECT_EQ((sup[{1, 2, 3}]), 2u);
  EXPECT_EQ(sup.count({1, 2, 3, 4}), 0u);
}

TEST(Itemset, MinSupportFilters) {
  auto itemsets = AprioriMine(ToyTransactions(), 4, 3);
  for (const auto& fi : itemsets) EXPECT_GE(fi.support, 4u);
  // Only singletons qualify at support 4.
  for (const auto& fi : itemsets) EXPECT_EQ(fi.items.size(), 1u);
}

struct MinerParams {
  size_t min_support;
  uint64_t seed;
};

class MinerEquivalence : public ::testing::TestWithParam<MinerParams> {};

TEST_P(MinerEquivalence, FpGrowthMatchesApriori) {
  // Property: on random transaction databases, FP-Growth and Apriori mine
  // the exact same (itemset, support) collection.
  const MinerParams p = GetParam();
  Rng rng(p.seed);
  std::vector<Transaction> tx(60);
  for (auto& t : tx) {
    for (Item item = 0; item < 8; ++item)
      if (rng.Bernoulli(0.35)) t.push_back(item);
  }
  auto a = AprioriMine(tx, p.min_support, 4);
  auto f = FpGrowthMine(tx, p.min_support, 4);
  auto key = [](const FrequentItemset& x) {
    return std::make_pair(x.items, x.support);
  };
  std::vector<std::pair<std::vector<Item>, size_t>> ka;
  std::vector<std::pair<std::vector<Item>, size_t>> kf;
  for (const auto& x : a) ka.push_back(key(x));
  for (const auto& x : f) kf.push_back(key(x));
  std::sort(ka.begin(), ka.end());
  std::sort(kf.begin(), kf.end());
  EXPECT_EQ(ka, kf);
}

INSTANTIATE_TEST_SUITE_P(SupportSweep, MinerEquivalence,
                         ::testing::Values(MinerParams{2, 1},
                                           MinerParams{5, 2},
                                           MinerParams{10, 3},
                                           MinerParams{20, 4},
                                           MinerParams{3, 5},
                                           MinerParams{8, 6}));

TEST(Itemset, AssociationRulesConfidence) {
  auto rules = MineAssociationRules(ToyTransactions(), 2, 0.5, 3);
  EXPECT_FALSE(rules.empty());
  for (const auto& r : rules) {
    EXPECT_GE(r.confidence, 0.5);
    EXPECT_GT(r.support, 0.0);
  }
  // Specific rule: {1} -> 2 has confidence 3/4.
  bool found = false;
  for (const auto& r : rules) {
    if (r.antecedent == std::vector<Item>{1} && r.consequent == 2) {
      EXPECT_NEAR(r.confidence, 0.75, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Itemset, TransactionsFromDataset) {
  Dataset ds = MakeHiringDataset(200);
  Discretizer disc = Discretizer::Fit(ds, 4);
  auto tx = ToTransactions(ds, disc);
  ASSERT_EQ(tx.size(), 200u);
  for (const auto& t : tx) EXPECT_EQ(t.size(), ds.d());
  // Item encoding round trip.
  const Item it = MakeItem(3, 2);
  EXPECT_EQ(ItemFeature(it), 3u);
  EXPECT_EQ(ItemBin(it), 2u);
}

TEST(KlBounds, BernoulliKlProperties) {
  EXPECT_NEAR(BernoulliKl(0.5, 0.5), 0.0, 1e-12);
  EXPECT_GT(BernoulliKl(0.9, 0.5), 0.0);
  // Bounds bracket the estimate and tighten with n.
  const double p = 0.8;
  const double loose_u = KlUpperBound(p, 1.0 / 10);
  const double tight_u = KlUpperBound(p, 1.0 / 1000);
  EXPECT_GT(loose_u, tight_u);
  EXPECT_GE(tight_u, p);
  const double loose_l = KlLowerBound(p, 1.0 / 10);
  const double tight_l = KlLowerBound(p, 1.0 / 1000);
  EXPECT_LT(loose_l, tight_l);
  EXPECT_LE(tight_l, p);
}

TEST(Anchors, FindsHighPrecisionRule) {
  Dataset ds = MakeHiringDataset(1500);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  ASSERT_TRUE(model.ok());
  AnchorsExplainer anchors(*model, ds,
                           {.precision_threshold = 0.9, .beam_width = 4});
  // Explain a clearly hired instance: referred with high interview score.
  std::vector<double> x = {8.0, 8.5, 2.0, 1.0, 1.0};
  ASSERT_GE(model->Predict(x), 0.5);
  auto rule = anchors.Explain(x);
  ASSERT_TRUE(rule.ok());
  EXPECT_GT(rule->precision, 0.85);
  EXPECT_GT(rule->coverage, 0.0);
  EXPECT_LE(rule->predicates.size(), 5u);
  // The instance itself must satisfy its anchor.
  EXPECT_TRUE(rule->Matches(x));
  EXPECT_DOUBLE_EQ(rule->outcome, 1.0);
}

TEST(Anchors, AnchorGeneralizesToSimilarInstances) {
  Dataset ds = MakeHiringDataset(1500);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  ASSERT_TRUE(model.ok());
  AnchorsExplainer anchors(*model, ds, {.precision_threshold = 0.9});
  std::vector<double> x = {8.0, 8.5, 2.0, 1.0, 1.0};
  auto rule = anchors.Explain(x);
  ASSERT_TRUE(rule.ok());
  // Empirical precision on the reference data.
  size_t matched = 0;
  size_t agreed = 0;
  for (size_t i = 0; i < ds.n(); ++i) {
    if (!rule->Matches(ds.row(i))) continue;
    ++matched;
    if (PredictLabel(*model, ds.row(i)) == rule->outcome) ++agreed;
  }
  if (matched >= 20) {
    EXPECT_GT(static_cast<double>(agreed) / matched, 0.8);
  }
}

TEST(DecisionSet, LearnsInterpretableClassifier) {
  Dataset ds = MakeHiringDataset(1500);
  auto dset = FitDecisionSet(ds, nullptr, {});
  ASSERT_TRUE(dset.ok());
  EXPECT_FALSE(dset->rules().empty());
  EXPECT_LE(dset->rules().size(), 8u);
  // Beats the majority-class baseline.
  double base_rate = 0.0;
  for (double y : ds.y()) base_rate += y;
  base_rate /= static_cast<double>(ds.n());
  const double majority = std::max(base_rate, 1.0 - base_rate);
  EXPECT_GT(dset->Accuracy(ds), majority + 0.03);
  for (const auto& rule : dset->rules())
    EXPECT_LE(rule.predicates.size(), 3u);
}

TEST(DecisionSet, SurrogateModeTracksModel) {
  Dataset ds = MakeHiringDataset(1200);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  ASSERT_TRUE(model.ok());
  auto dset = FitDecisionSet(ds, &*model, {});
  ASSERT_TRUE(dset.ok());
  // Agreement with the black box (fidelity), not the labels.
  size_t agree = 0;
  for (size_t i = 0; i < ds.n(); ++i)
    if ((dset->Predict(ds.row(i)) >= 0.5) ==
        (model->Predict(ds.row(i)) >= 0.5))
      ++agree;
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(ds.n()), 0.8);
  EXPECT_NE(dset->ToString(ds.schema()).find("IF"), std::string::npos);
}

}  // namespace
}  // namespace xai
