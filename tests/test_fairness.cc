#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "db/bias_explain.h"
#include "eval/fairness.h"
#include "model/gbdt.h"
#include "model/naive_bayes.h"
#include "text/lime_text.h"
#include "text/text_data.h"

namespace xai {
namespace {

TEST(GroupFairness, DetectsInjectedGenderBias) {
  Dataset fair_ds = MakeLoanDataset(4000, {.seed = 2, .gender_bias = 0.0});
  Dataset biased_ds = MakeLoanDataset(4000, {.seed = 2, .gender_bias = 3.0});
  auto fair_model = GradientBoostedTrees::Fit(fair_ds, {.num_rounds = 40});
  auto biased_model =
      GradientBoostedTrees::Fit(biased_ds, {.num_rounds = 40});
  ASSERT_TRUE(fair_model.ok() && biased_model.ok());
  const size_t kGender = 6;
  auto fair = AuditGroupFairness(*fair_model, fair_ds, kGender);
  auto biased = AuditGroupFairness(*biased_model, biased_ds, kGender);
  ASSERT_TRUE(fair.ok() && biased.ok());
  EXPECT_LT(std::fabs(fair->demographic_parity_gap), 0.1);
  EXPECT_GT(biased->demographic_parity_gap, 0.25);
  EXPECT_GT(biased->demographic_parity_gap,
            fair->demographic_parity_gap + 0.15);
  EXPECT_FALSE(AuditGroupFairness(*fair_model, fair_ds, 99).ok());
}

TEST(InterventionalFairness, SeparatesDirectBiasFromProxy) {
  // SCM: gender -> income (proxy), income -> decision-relevant.
  // Model A uses income only: conditioning on gender shows a gap, but
  // intervening on gender also shows one (gender causes income). Model B
  // ignores both: interventional gap ~ 0.
  Dag dag;
  const size_t n_g = *dag.AddNode("gender");
  const size_t n_inc = *dag.AddNode("income");
  const size_t n_z = *dag.AddNode("other");
  ASSERT_TRUE(dag.AddEdge(n_g, n_inc).ok());
  Scm scm(std::move(dag));
  ASSERT_TRUE(scm.SetLinearEquation(n_g, {}, 0.0, 1.0).ok());
  ASSERT_TRUE(scm.SetLinearEquation(n_inc, {2.0}, 0.0, 0.5).ok());
  ASSERT_TRUE(scm.SetLinearEquation(n_z, {}, 0.0, 1.0).ok());

  auto income_model = MakeLambdaModel(3, [](const std::vector<double>& v) {
    return v[1] > 0.0 ? 1.0 : 0.0;  // Decides on income only.
  });
  auto blind_model = MakeLambdaModel(3, [](const std::vector<double>& v) {
    return v[2] > 0.0 ? 1.0 : 0.0;  // Ignores gender and income.
  });
  auto gap_income =
      InterventionalFairnessGap(income_model, scm, {n_g, n_inc, n_z}, 0);
  auto gap_blind =
      InterventionalFairnessGap(blind_model, scm, {n_g, n_inc, n_z}, 0);
  ASSERT_TRUE(gap_income.ok() && gap_blind.ok());
  // do(gender=1) raises income by 2 -> far more positives.
  EXPECT_GT(*gap_income, 0.45);
  EXPECT_NEAR(*gap_blind, 0.0, 0.05);
}

TEST(QueryBias, DetectsSimpsonsParadox) {
  // Classic construction: treatment helps within every department but is
  // applied mostly in the hard department, so the raw average reverses.
  Relation r("admissions", {"treatment", "outcome", "dept"});
  auto add = [&](int t, double o, int dept, int copies) {
    for (int c = 0; c < copies; ++c)
      (void)*r.Insert({static_cast<double>(t), o,
                       static_cast<double>(dept)});
  };
  // Dept 0 (easy): control 80% success (many), treated 90% (few).
  add(0, 1.0, 0, 80);
  add(0, 0.0, 0, 20);
  add(1, 1.0, 0, 9);
  add(1, 0.0, 0, 1);
  // Dept 1 (hard): control 20% success (few), treated 30% (many).
  add(0, 1.0, 1, 2);
  add(0, 0.0, 1, 8);
  add(1, 1.0, 1, 30);
  add(1, 0.0, 1, 70);

  auto report = DetectQueryBias(r, "treatment", "outcome", {"dept"});
  ASSERT_TRUE(report.ok());
  // Raw: treated look worse; adjusted: treatment helps in every stratum.
  EXPECT_LT(report->unadjusted_effect, -0.1);
  EXPECT_GT(report->adjusted_effect, 0.05);
  EXPECT_TRUE(report->simpson_reversal);
  ASSERT_EQ(report->strata.size(), 2u);
  for (const auto& s : report->strata) EXPECT_GT(s.effect, 0.05);
  EXPECT_FALSE(DetectQueryBias(r, "nope", "outcome", {"dept"}).ok());
}

TEST(QueryBias, NoReversalWithoutConfounding) {
  Relation r("t", {"treatment", "outcome"});
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double t = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    const double o = t * 0.3 + rng.Gaussian(0.0, 0.1);
    (void)*r.Insert({t, o});
  }
  auto report = DetectQueryBias(r, "treatment", "outcome", {});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->unadjusted_effect, 0.3, 0.05);
  EXPECT_NEAR(report->adjusted_effect, report->unadjusted_effect, 1e-9);
  EXPECT_FALSE(report->simpson_reversal);
}

TEST(NaiveBayes, LearnsTextAndExposesExactAttribution) {
  TextCorpus corpus = MakeReviewCorpus(1500);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  auto nb = MultinomialNaiveBayes::Fit(ds);
  ASSERT_TRUE(nb.ok());
  size_t correct = 0;
  for (size_t i = 0; i < ds.n(); ++i)
    if ((nb->Predict(ds.row(i)) >= 0.5) == (ds.y()[i] >= 0.5)) ++correct;
  EXPECT_GT(static_cast<double>(correct) / ds.n(), 0.85);
  // LLRs separate the known signal words.
  for (const std::string& w : PositiveSignalWords()) {
    const int id = vocab.WordId(w);
    if (id >= 0) {
      EXPECT_GT(nb->log_likelihood_ratios()[static_cast<size_t>(id)], 0.0);
    }
  }
  // LIME's estimated word weights agree in sign with the exact LLRs on a
  // concrete review.
  LimeTextExplainer lime(*nb, bow, {.num_samples = 700});
  auto attr = lime.Explain("excellent product but terrible shipping");
  ASSERT_TRUE(attr.ok());
  for (size_t i = 0; i < attr->words.size(); ++i) {
    const int id = vocab.WordId(attr->words[i]);
    ASSERT_GE(id, 0);
    const double llr = nb->log_likelihood_ratios()[static_cast<size_t>(id)];
    if (std::fabs(llr) > 0.5) {  // Only strongly-signed words.
      EXPECT_GT(attr->weights[i] * llr, 0.0) << attr->words[i];
    }
  }
}

TEST(NaiveBayes, InputValidation) {
  Schema schema({FeatureSpec::Numeric("a")});
  Matrix x = {{1.0}, {-1.0}};
  Dataset bad(schema, x, {1.0, 0.0});
  EXPECT_FALSE(MultinomialNaiveBayes::Fit(bad).ok());  // Negative count.
  Matrix x2 = {{1.0}, {2.0}};
  Dataset one_class(schema, x2, {1.0, 1.0});
  EXPECT_FALSE(MultinomialNaiveBayes::Fit(one_class).ok());
}

}  // namespace
}  // namespace xai
