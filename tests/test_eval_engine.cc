// Tests for the shared coalition-evaluation engine: the sharded CLOCK
// memo cache (eviction at capacity 1, cold-entry preference, an 8-thread
// hammer — the `cache` ctest label is part of the TSan job), the
// bit-identity contract (cache on/off and any thread count produce the
// same attribution bits for KernelSHAP, MC-Shapley and query-Shapley),
// within-sweep mask dedup, null-cache passthrough (no dedup — budget
// accounting must see every evaluation), Banzhaf/Owen through CachedGame,
// and the global XAIDB_CACHE capacity knob.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/eval_engine.h"
#include "core/game.h"
#include "data/synthetic.h"
#include "db/query_shapley.h"
#include "feature/kernel_shap.h"
#include "feature/mc_shapley.h"
#include "feature/shapley.h"
#include "model/gbdt.h"

namespace xai {
namespace {

/// Distinct, well-spread cache keys for the unit tests below.
EvalCacheKey TestKey(int i) {
  std::vector<bool> mask(16);
  for (int j = 0; j < 16; ++j) mask[static_cast<size_t>(j)] = (i >> j) & 1;
  return MakeEvalCacheKey(0xFEEDULL, mask);
}

TEST(CoalitionValueCache, EvictionAtCapacityOne) {
  CoalitionValueCache cache(1, 1);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Insert(TestKey(1), 1.5);
  double v = 0.0;
  ASSERT_TRUE(cache.Lookup(TestKey(1), &v));
  EXPECT_EQ(v, 1.5);
  cache.Insert(TestKey(2), 2.5);  // full: must evict the only resident
  EXPECT_FALSE(cache.Lookup(TestKey(1), &v));
  ASSERT_TRUE(cache.Lookup(TestKey(2), &v));
  EXPECT_EQ(v, 2.5);
  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(CoalitionValueCache, ClockEvictsColdEntryFirst) {
  // Single shard so the CLOCK hand is deterministic. Inserting C into the
  // full {A, B} shard sweeps both reference bits and evicts A; C lands
  // freshly referenced while B is now cold — so the next insert must take
  // B and leave the recently-installed C resident.
  CoalitionValueCache cache(2, 1);
  cache.Insert(TestKey(1), 1.0);  // A
  cache.Insert(TestKey(2), 2.0);  // B
  cache.Insert(TestKey(3), 3.0);  // C evicts A
  double v = 0.0;
  EXPECT_FALSE(cache.Lookup(TestKey(1), &v));
  cache.Insert(TestKey(4), 4.0);  // D evicts cold B, referenced C survives
  EXPECT_FALSE(cache.Lookup(TestKey(2), &v));
  ASSERT_TRUE(cache.Lookup(TestKey(3), &v));
  EXPECT_EQ(v, 3.0);
  ASSERT_TRUE(cache.Lookup(TestKey(4), &v));
  EXPECT_EQ(v, 4.0);
  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 2u);
}

TEST(CoalitionValueCache, ShardCountClampedToCapacity) {
  // 64 requested shards over capacity 4: occupancy must still equal the
  // configured capacity exactly, not 64 x per-shard minimums.
  CoalitionValueCache cache(4, 64);
  for (int i = 0; i < 100; ++i) cache.Insert(TestKey(i), i);
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.stats().capacity, 4u);
}

TEST(CoalitionValueCache, EightThreadHammer) {
  constexpr size_t kThreads = 8;
  constexpr int kItersPerThread = 4000;
  constexpr int kKeySpace = 256;
  CoalitionValueCache cache(64, 8);
  std::atomic<int> wrong_values{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const int k = static_cast<int>((i + t * 37) % kKeySpace);
        const double expect = static_cast<double>(k) * 0.5;
        double v = 0.0;
        if (cache.Lookup(TestKey(k), &v)) {
          // First-write-wins + all writers agree, so a hit may only ever
          // return the one true value for this key.
          if (v != expect) wrong_values.fetch_add(1);
        } else {
          cache.Insert(TestKey(k), expect);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong_values.load(), 0);
  const EvalCacheStats s = cache.stats();
  EXPECT_LE(s.entries, 64u);
  EXPECT_EQ(s.hits + s.misses, kThreads * kItersPerThread);
}

TEST(CachedGame, DedupsWithinSweepAndMemoizesAcrossSweeps) {
  std::atomic<int> evals{0};
  LambdaGame inner(4, [&](const std::vector<bool>& m) {
    evals.fetch_add(1);
    double v = 0.0;
    for (size_t j = 0; j < m.size(); ++j)
      if (m[j]) v += static_cast<double>(j + 1);
    return v;
  });
  CachedGame game(inner, 0xABCDULL,
                  std::make_shared<CoalitionValueCache>(64));
  const std::vector<bool> a{true, false, false, false};
  const std::vector<bool> b{false, true, true, false};
  const std::vector<bool> c{true, true, true, true};
  const std::vector<std::vector<bool>> sweep{a, b, a, c, b, a};
  const std::vector<double> got = game.ValueBatch(sweep);
  EXPECT_EQ(evals.load(), 3);  // three distinct masks in a six-mask sweep
  ASSERT_EQ(got.size(), sweep.size());
  for (size_t i = 0; i < sweep.size(); ++i)
    EXPECT_EQ(got[i], inner.Value(sweep[i])) << "mask " << i;
  evals.store(0);
  const std::vector<double> again = game.ValueBatch(sweep);
  EXPECT_EQ(evals.load(), 0);  // fully warm: zero inner evaluations
  EXPECT_EQ(again, got);
}

TEST(CachedGame, NullCacheIsPassthroughWithoutDedup) {
  // The budget-accounting contract: with no cache attached, every
  // coalition — duplicates included — reaches the inner game, so
  // model-evaluation counters stay exactly what the explainer configured.
  std::atomic<int> evals{0};
  LambdaGame inner(3, [&](const std::vector<bool>& m) {
    evals.fetch_add(1);
    return m[0] ? 1.0 : 0.0;
  });
  CachedGame game(inner, 0xABCDULL, nullptr);
  const std::vector<bool> a{true, false, false};
  const std::vector<std::vector<bool>> sweep{a, a, a, a};
  game.ValueBatch(sweep);
  EXPECT_EQ(evals.load(), 4);
  game.Value(a);
  EXPECT_EQ(evals.load(), 5);
}

TEST(CachedGame, BanzhafAndOwenBitIdenticalThroughCache) {
  LambdaGame inner(6, [](const std::vector<bool>& m) {
    double v = 0.0;
    for (size_t j = 0; j < m.size(); ++j)
      if (m[j]) v += 1.0 / static_cast<double>(j + 2);
    return v * v;  // superadditive enough to be non-trivial
  });
  CachedGame cached(inner, 0x5151ULL,
                    std::make_shared<CoalitionValueCache>(1 << 12));
  {
    Rng r1(5), r2(5);
    const std::vector<double> plain = SampledBanzhaf(inner, 64, &r1);
    const std::vector<double> through = SampledBanzhaf(cached, 64, &r2);
    EXPECT_EQ(plain, through);
  }
  {
    const std::vector<std::vector<size_t>> groups{{0, 1}, {2, 3, 4}, {5}};
    Rng r1(9), r2(9);
    auto plain = OwenValues(inner, groups, 32, &r1);
    auto through = OwenValues(cached, groups, 32, &r2);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(through.ok());
    EXPECT_EQ(plain.value(), through.value());
  }
}

TEST(GlobalEvalCache, CapacityKnob) {
  SetGlobalEvalCacheCapacity(128);
  std::shared_ptr<CoalitionValueCache> cache = GlobalEvalCache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->capacity(), 128u);
  SetGlobalEvalCacheCapacity(0);
  EXPECT_EQ(GlobalEvalCache(), nullptr);
}

/// Shared fixture for the explainer-level bit-identity tests: loan data +
/// a GBDT, built once per binary. The global cache is pinned off so the
/// uncached baselines stay uncached regardless of the environment.
class EvalEngineExplainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SetGlobalEvalCacheCapacity(0);
    ds_ = new Dataset(MakeLoanDataset(300, {.seed = 17}));
    auto m = GradientBoostedTrees::Fit(*ds_, {.num_rounds = 15});
    ASSERT_TRUE(m.ok());
    gbdt_ = new GradientBoostedTrees(std::move(*m));
  }
  static void TearDownTestSuite() {
    delete gbdt_;
    delete ds_;
  }

  static void ExpectBitIdentical(const FeatureAttribution& a,
                                 const FeatureAttribution& b) {
    ASSERT_EQ(a.values.size(), b.values.size());
    for (size_t j = 0; j < a.values.size(); ++j)
      EXPECT_EQ(a.values[j], b.values[j]) << "feature " << j;
    EXPECT_EQ(a.base_value, b.base_value);
  }

  static Dataset* ds_;
  static GradientBoostedTrees* gbdt_;
};

Dataset* EvalEngineExplainerTest::ds_ = nullptr;
GradientBoostedTrees* EvalEngineExplainerTest::gbdt_ = nullptr;

TEST_F(EvalEngineExplainerTest, KernelShapCacheOnOffBitIdentical) {
  KernelShapOptions plain_opts;
  plain_opts.max_background = 10;
  KernelShapExplainer plain(*gbdt_, *ds_, plain_opts);
  KernelShapOptions cached_opts = plain_opts;
  cached_opts.cache = std::make_shared<CoalitionValueCache>(1 << 14);
  KernelShapExplainer cached(*gbdt_, *ds_, cached_opts);
  // Two passes over the same rows: the second is answered from a warm
  // cache and must still match the uncached explainer bit for bit.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t row = 0; row < 4; ++row) {
      auto a = plain.Explain(ds_->row(row));
      auto b = cached.Explain(ds_->row(row));
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectBitIdentical(a.value(), b.value());
    }
  }
  const EvalCacheStats s = cached_opts.cache->stats();
  EXPECT_GT(s.hits, 0u);  // the second pass must actually hit
  EXPECT_GT(s.misses, 0u);
}

TEST_F(EvalEngineExplainerTest, McShapleyCacheOnOffBitIdentical) {
  McShapleyOptions plain_opts;
  plain_opts.num_permutations = 20;
  plain_opts.max_background = 10;
  McShapleyExplainer plain(*gbdt_, *ds_, plain_opts);
  McShapleyOptions cached_opts = plain_opts;
  cached_opts.cache = std::make_shared<CoalitionValueCache>(1 << 14);
  McShapleyExplainer cached(*gbdt_, *ds_, cached_opts);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t row = 0; row < 3; ++row) {
      auto a = plain.Explain(ds_->row(row));
      auto b = cached.Explain(ds_->row(row));
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectBitIdentical(a.value(), b.value());
    }
  }
  EXPECT_GT(cached_opts.cache->stats().hits, 0u);
}

TEST_F(EvalEngineExplainerTest, KernelShapThreadCountInvariantWithCache) {
  KernelShapOptions opts;
  opts.max_background = 10;
  opts.cache = std::make_shared<CoalitionValueCache>(1 << 14);
  SetGlobalThreads(1);
  KernelShapExplainer serial(*gbdt_, *ds_, opts);
  auto a = serial.Explain(ds_->row(0));
  ASSERT_TRUE(a.ok());
  SetGlobalThreads(8);
  // Same shared cache, now filled by the serial run and probed from 8
  // ParallelFor workers: chunk seeding and per-chunk cache probes must not
  // make the result depend on which thread fills or hits first.
  KernelShapExplainer parallel(*gbdt_, *ds_, opts);
  auto b = parallel.Explain(ds_->row(0));
  auto c = parallel.Explain(ds_->row(0));  // fully warm replay
  SetGlobalThreads(0);  // restore the default pool
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ExpectBitIdentical(a.value(), b.value());
  ExpectBitIdentical(a.value(), c.value());
}

TEST(QueryShapleyCache, ExactPathBitIdentical) {
  const auto query = [](const std::vector<bool>& keep) {
    double v = 0.0;
    for (size_t i = 0; i < keep.size(); ++i)
      if (keep[i]) v += static_cast<double>(i + 1) * 1.25;
    return v;
  };
  QueryShapleyOptions plain;  // 5 tuples <= exact_up_to: exact enumeration
  auto a = TupleShapley(5, query, plain);
  QueryShapleyOptions cached = plain;
  cached.cache = std::make_shared<CoalitionValueCache>(1 << 10);
  cached.cache_fingerprint = 42;
  auto b = TupleShapley(5, query, cached);
  auto c = TupleShapley(5, query, cached);  // warm replay, same cache
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value(), c.value());
  const EvalCacheStats s = cached.cache->stats();
  EXPECT_GT(s.hits, 0u);  // the replay answered from the memo table
}

TEST(QueryShapleyCache, SamplingPathBitIdenticalAndSkipsRepeatEvals) {
  std::atomic<int> evals{0};
  const auto query = [&](const std::vector<bool>& keep) {
    evals.fetch_add(1);
    double v = 0.0;
    for (size_t i = 0; i < keep.size(); ++i)
      if (keep[i]) v += static_cast<double>((i * 7 + 3) % 11);
    return v;
  };
  QueryShapleyOptions plain;
  plain.num_permutations = 40;  // 20 tuples > exact_up_to: permutation path
  auto a = TupleShapley(20, query, plain);
  QueryShapleyOptions cached = plain;
  cached.cache = std::make_shared<CoalitionValueCache>(1 << 14);
  auto b = TupleShapley(20, query, cached);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  const int after_first_cached = evals.load();
  auto c = TupleShapley(20, query, cached);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value(), c.value());
  // The warm replay re-runs zero sub-database queries: every permutation
  // prefix was memoized by the first cached run.
  EXPECT_EQ(evals.load(), after_first_cached);
}

}  // namespace
}  // namespace xai
