#include "feature/tree_shap.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "feature/shapley.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"

namespace xai {
namespace {

TEST(TreeShap, EfficiencySingleTree) {
  Dataset ds = MakeGaussianDataset(400, {.seed = 5, .dims = 6, .rho = 0.3});
  auto tree = DecisionTree::Fit(ds, {.max_depth = 5, .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < 20; ++i) {
    std::vector<double> x = ds.row(i);
    std::vector<double> phi(ds.d(), 0.0);
    TreeShapValues(tree->tree(), x, &phi);
    double sum = 0.0;
    for (double v : phi) sum += v;
    EXPECT_NEAR(sum, tree->Predict(x) - tree->tree().ExpectedValue(), 1e-9)
        << "efficiency violated at row " << i;
  }
}

TEST(TreeShap, MatchesExactEnumerationSingleTree) {
  Dataset ds = MakeGaussianDataset(300, {.seed = 9, .dims = 8, .rho = 0.0});
  auto tree = DecisionTree::Fit(ds, {.max_depth = 4, .min_samples_leaf = 10});
  ASSERT_TRUE(tree.ok());
  std::vector<Tree> trees = {tree->tree()};
  for (size_t i = 0; i < 10; ++i) {
    std::vector<double> x = ds.row(i);
    std::vector<double> fast(ds.d(), 0.0);
    TreeShapValues(tree->tree(), x, &fast);
    TreePathGame game(trees, 1.0, ds.d(), x);
    auto exact = ExactShapley(game);
    ASSERT_TRUE(exact.ok());
    for (size_t j = 0; j < ds.d(); ++j)
      EXPECT_NEAR(fast[j], (*exact)[j], 1e-8)
          << "row " << i << " feature " << j;
  }
}

TEST(TreeShap, MatchesExactEnumerationGbdtEnsemble) {
  Dataset ds = MakeGaussianDataset(400, {.seed = 12, .dims = 6, .rho = 0.2});
  auto gbdt = GradientBoostedTrees::Fit(
      ds, {.num_rounds = 20, .learning_rate = 0.2,
           .tree = {.max_depth = 3, .min_samples_leaf = 5,
                    .max_features = 0}});
  ASSERT_TRUE(gbdt.ok());
  for (size_t i = 0; i < 5; ++i) {
    std::vector<double> x = ds.row(i);
    std::vector<double> fast =
        EnsembleTreeShap(gbdt->trees(), gbdt->learning_rate(), ds.d(), x);
    TreePathGame game(gbdt->trees(), gbdt->learning_rate(), ds.d(), x);
    auto exact = ExactShapley(game);
    ASSERT_TRUE(exact.ok());
    for (size_t j = 0; j < ds.d(); ++j)
      EXPECT_NEAR(fast[j], (*exact)[j], 1e-8);
  }
}

TEST(TreeShap, ExplainerReportsMarginAndNames) {
  Dataset ds = MakeLoanDataset(500);
  auto gbdt = GradientBoostedTrees::Fit(ds);
  ASSERT_TRUE(gbdt.ok());
  TreeShapExplainer explainer(*gbdt, ds.schema());
  auto attr = explainer.Explain(ds.row(3));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->feature_names.size(), ds.d());
  EXPECT_EQ(attr->feature_names[1], "income");
  EXPECT_NEAR(attr->prediction, gbdt->PredictMargin(ds.row(3)), 1e-9);
  EXPECT_NEAR(attr->Reconstruction(), attr->prediction, 1e-7);
}

TEST(TreeShap, IrrelevantFeatureGetsZero) {
  // Feature d-1 is never split on if it carries no signal and the tree is
  // shallow; build a tree manually to make this deterministic.
  Tree tree;
  tree.nodes.resize(3);
  tree.nodes[0] = {0, 0.5, 1, 2, 0.0, 100.0};
  tree.nodes[1] = {-1, 0.0, -1, -1, 1.0, 60.0};
  tree.nodes[2] = {-1, 0.0, -1, -1, 5.0, 40.0};
  std::vector<double> phi(3, 0.0);
  TreeShapValues(tree, {0.2, 9.9, -3.0}, &phi);
  EXPECT_NEAR(phi[1], 0.0, 1e-12);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
  // Expected value = 0.6*1 + 0.4*5 = 2.6; f(x)=1 -> phi_0 = -1.6.
  EXPECT_NEAR(phi[0], 1.0 - 2.6, 1e-12);
}

TEST(InterventionalTreeShap, SingleReferenceEfficiency) {
  Dataset ds = MakeGaussianDataset(400, {.seed = 31, .dims = 6, .rho = 0.2});
  auto tree = DecisionTree::Fit(ds, {.max_depth = 5, .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < 10; ++i) {
    const std::vector<double> x = ds.row(i);
    const std::vector<double> ref = ds.row(ds.n() - 1 - i);
    std::vector<double> phi(ds.d(), 0.0);
    InterventionalTreeShap(tree->tree(), x, ref, &phi);
    double sum = 0.0;
    for (double v : phi) sum += v;
    EXPECT_NEAR(sum, tree->Predict(x) - tree->Predict(ref), 1e-10)
        << "row " << i;
  }
}

TEST(InterventionalTreeShap, MatchesExactCubeGameShapley) {
  // Against brute-force Shapley of v(S) = tree(x_S, ref_~S).
  Dataset ds = MakeGaussianDataset(300, {.seed = 33, .dims = 7});
  auto tree = DecisionTree::Fit(ds, {.max_depth = 5, .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());
  for (size_t trial = 0; trial < 5; ++trial) {
    const std::vector<double> x = ds.row(trial);
    const std::vector<double> ref = ds.row(100 + trial);
    std::vector<double> fast(ds.d(), 0.0);
    InterventionalTreeShap(tree->tree(), x, ref, &fast);
    LambdaGame game(ds.d(), [&](const std::vector<bool>& s) {
      std::vector<double> z(ds.d());
      for (size_t j = 0; j < ds.d(); ++j) z[j] = s[j] ? x[j] : ref[j];
      return tree->tree().Predict(z);
    });
    auto exact = ExactShapley(game);
    ASSERT_TRUE(exact.ok());
    for (size_t j = 0; j < ds.d(); ++j)
      EXPECT_NEAR(fast[j], (*exact)[j], 1e-10)
          << "trial " << trial << " feature " << j;
  }
}

TEST(InterventionalTreeShap, EnsembleMatchesMarginalGameExactShapley) {
  // Averaged over a background, interventional TreeSHAP computes exactly
  // the Shapley values of MarginalFeatureGame — the quantity KernelSHAP
  // approximates by regression.
  Dataset ds = MakeGaussianDataset(500, {.seed = 35, .dims = 6, .rho = 0.4});
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 15});
  ASSERT_TRUE(gbdt.ok());
  const std::vector<double> x = ds.row(1);
  const size_t kBackground = 30;
  std::vector<double> fast = InterventionalEnsembleShap(
      gbdt->trees(), gbdt->learning_rate(), ds.d(), x, ds.x(), kBackground);
  // Exact Shapley of the margin's marginal game with the same background.
  auto margin_model = MakeLambdaModel(ds.d(), [&](const std::vector<double>& v) {
    return gbdt->PredictMargin(v) - gbdt->base_score();
  });
  MarginalFeatureGame game(margin_model, ds.x(), x, kBackground);
  auto exact = ExactShapley(game);
  ASSERT_TRUE(exact.ok());
  for (size_t j = 0; j < ds.d(); ++j)
    EXPECT_NEAR(fast[j], (*exact)[j], 1e-9) << "feature " << j;
}

TEST(TreeShap, GlobalImportanceRanksSignalFeatures) {
  // Ground-truth weights 1, 1/2, 1/3, ... => feature 0 should dominate.
  Dataset ds = MakeGaussianDataset(800, {.seed = 21, .dims = 5, .rho = 0.0});
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  ASSERT_TRUE(gbdt.ok());
  TreeShapExplainer explainer(*gbdt, ds.schema());
  std::vector<double> imp = GlobalMeanAbsShap(&explainer, ds, 100);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[0], imp[3]);
  EXPECT_GT(imp[0], imp[4]);
}

}  // namespace
}  // namespace xai
