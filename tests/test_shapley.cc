#include <gtest/gtest.h>

#include <cmath>

#include "core/game.h"
#include "data/synthetic.h"
#include "feature/kernel_shap.h"
#include "feature/shapley.h"
#include "model/linear_regression.h"
#include "model/logistic_regression.h"

namespace xai {
namespace {

// Additive game: v(S) = sum of fixed per-player worth. Shapley = worth.
class AdditiveGame : public CoalitionGame {
 public:
  explicit AdditiveGame(std::vector<double> worth) : worth_(std::move(worth)) {}
  size_t num_players() const override { return worth_.size(); }
  double Value(const std::vector<bool>& s) const override {
    double total = 0.0;
    for (size_t i = 0; i < worth_.size(); ++i)
      if (s[i]) total += worth_[i];
    return total;
  }

 private:
  std::vector<double> worth_;
};

// The classic glove game: player 0 owns a left glove, players 1 and 2 own
// right gloves; a pair is worth 1. Known Shapley values: (2/3, 1/6, 1/6).
class GloveGame : public CoalitionGame {
 public:
  size_t num_players() const override { return 3; }
  double Value(const std::vector<bool>& s) const override {
    return (s[0] && (s[1] || s[2])) ? 1.0 : 0.0;
  }
};

TEST(ExactShapley, AdditiveGameIsIdentity) {
  AdditiveGame game({3.0, -1.0, 0.5, 2.0});
  auto phi = ExactShapley(game);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR((*phi)[0], 3.0, 1e-12);
  EXPECT_NEAR((*phi)[1], -1.0, 1e-12);
  EXPECT_NEAR((*phi)[2], 0.5, 1e-12);
  EXPECT_NEAR((*phi)[3], 2.0, 1e-12);
}

TEST(ExactShapley, GloveGame) {
  GloveGame game;
  auto phi = ExactShapley(game);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR((*phi)[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR((*phi)[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR((*phi)[2], 1.0 / 6.0, 1e-12);
}

TEST(ExactShapley, EfficiencyAxiomOnRandomGames) {
  // Property: for arbitrary games, sum(phi) = v(N) - v(empty).
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 2 + trial % 5;
    // Random game via lookup table.
    std::vector<double> table(1u << n);
    for (double& v : table) v = rng.Uniform(-2, 2);
    LambdaGame game(n, [&](const std::vector<bool>& s) {
      uint32_t mask = 0;
      for (size_t i = 0; i < n; ++i)
        if (s[i]) mask |= 1u << i;
      return table[mask];
    });
    auto phi = ExactShapley(game);
    ASSERT_TRUE(phi.ok());
    double sum = 0.0;
    for (double p : *phi) sum += p;
    EXPECT_NEAR(sum, table[(1u << n) - 1] - table[0], 1e-10);
  }
}

TEST(ExactShapley, DummyAndSymmetryAxioms) {
  // Player 2 is a dummy; players 0 and 1 are symmetric.
  LambdaGame game(3, [](const std::vector<bool>& s) {
    return (s[0] ? 1.0 : 0.0) + (s[1] ? 1.0 : 0.0) +
           (s[0] && s[1] ? 2.0 : 0.0);
  });
  auto phi = ExactShapley(game);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR((*phi)[2], 0.0, 1e-12);
  EXPECT_NEAR((*phi)[0], (*phi)[1], 1e-12);
}

TEST(ExactShapley, RejectsTooManyPlayers) {
  AdditiveGame big(std::vector<double>(25, 1.0));
  EXPECT_FALSE(ExactShapley(big, 20).ok());
}

TEST(PermutationShapley, ConvergesToExact) {
  GloveGame game;
  Rng rng(7);
  auto rough = PermutationShapley(game, 2000, &rng);
  EXPECT_NEAR(rough[0], 2.0 / 3.0, 0.03);
  EXPECT_NEAR(rough[1], 1.0 / 6.0, 0.03);
}

TEST(SampledBanzhaf, AdditiveGameIsIdentity) {
  AdditiveGame game({1.0, 2.0, -0.5});
  Rng rng(9);
  auto bz = SampledBanzhaf(game, 6000, &rng);
  EXPECT_NEAR(bz[0], 1.0, 0.05);
  EXPECT_NEAR(bz[1], 2.0, 0.05);
  EXPECT_NEAR(bz[2], -0.5, 0.05);
}

TEST(MarginalGame, LinearModelClosedForm) {
  // For linear f and the marginal game, v(S) = sum_{j in S} w_j x_j +
  // sum_{j notin S} w_j mean_bg_j + b; Shapley phi_j = w_j (x_j - mean_j).
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(500, 5, 31, &w);
  auto model = LinearRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  const std::vector<double> x = ds.row(0);
  MarginalFeatureGame game(*model, ds.x(), x, 500);
  auto phi = ExactShapley(game);
  ASSERT_TRUE(phi.ok());
  // Background means over the (strided) subsample the game uses — compare
  // via the game's own base value identity instead:
  double sum = 0.0;
  for (double p : *phi) sum += p;
  EXPECT_NEAR(sum, model->Predict(x) - game.BaseValue(), 1e-9);
  // Sign/magnitude matches w_j (x_j - mean_j) with the full-data mean.
  for (size_t j = 0; j < 5; ++j) {
    std::vector<double> col = ds.x().Col(j);
    double mean = 0.0;
    for (double v : col) mean += v / col.size();
    EXPECT_NEAR((*phi)[j], model->weights()[j] * (x[j] - mean), 0.05);
  }
}

TEST(KernelShap, ShapleyKernelWeights) {
  EXPECT_DOUBLE_EQ(ShapleyKernelWeight(4, 0), 0.0);
  EXPECT_DOUBLE_EQ(ShapleyKernelWeight(4, 4), 0.0);
  // d=4, s=1: 3 / (C(4,1)*1*3) = 0.25.
  EXPECT_NEAR(ShapleyKernelWeight(4, 1), 0.25, 1e-12);
  // Symmetric in s <-> d-s.
  EXPECT_NEAR(ShapleyKernelWeight(5, 2), ShapleyKernelWeight(5, 3), 1e-12);
}

TEST(KernelShap, ExactModeMatchesExactShapley) {
  Dataset ds = MakeGaussianDataset(300, {.seed = 17, .dims = 6, .rho = 0.4});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  const std::vector<double> x = ds.row(1);

  KernelShapOptions opts;
  opts.max_background = 40;
  KernelShapExplainer ks(*model, ds, opts);
  auto attr = ks.Explain(x);
  ASSERT_TRUE(attr.ok());

  MarginalFeatureGame game(*model, ds.x(), x, 40);
  auto exact = ExactShapley(game);
  ASSERT_TRUE(exact.ok());
  for (size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(attr->values[j], (*exact)[j], 1e-6) << "feature " << j;
  // Efficiency.
  EXPECT_NEAR(attr->Reconstruction(),
              game.Value(std::vector<bool>(6, true)), 1e-6);
}

TEST(KernelShap, SamplingModeApproximatesExact) {
  Dataset ds = MakeGaussianDataset(400, {.seed = 19, .dims = 14});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  const std::vector<double> x = ds.row(2);

  KernelShapOptions exact_opts;
  exact_opts.exact_up_to = 14;
  exact_opts.max_background = 25;
  KernelShapExplainer exact_ks(*model, ds, exact_opts);
  auto exact = exact_ks.Explain(x);
  ASSERT_TRUE(exact.ok());

  KernelShapOptions samp_opts;
  samp_opts.exact_up_to = 5;  // Force sampling.
  samp_opts.num_samples = 4000;
  samp_opts.max_background = 25;
  KernelShapExplainer samp_ks(*model, ds, samp_opts);
  auto approx = samp_ks.Explain(x);
  ASSERT_TRUE(approx.ok());

  for (size_t j = 0; j < 14; ++j)
    EXPECT_NEAR(approx->values[j], exact->values[j], 0.05) << j;
}

TEST(ConditionalGame, FullAndEmptyCoalitions) {
  Dataset ds = MakeGaussianDataset(500, {.seed = 23, .dims = 4, .rho = 0.5});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  const std::vector<double> x = ds.row(0);
  auto game = ConditionalGaussianGame::Create(*model, ds.x(), x, 128);
  ASSERT_TRUE(game.ok());
  EXPECT_NEAR(game->Value(std::vector<bool>(4, true)), model->Predict(x),
              1e-12);
  // Value is a pure function of the coalition (deterministic).
  std::vector<bool> s = {true, false, true, false};
  EXPECT_DOUBLE_EQ(game->Value(s), game->Value(s));
}

TEST(ConditionalGame, UsesCorrelationUnlikeMarginal) {
  // Model depends only on x1, but x0 and x1 are strongly correlated:
  // conditioning on x0 alone moves the conditional expectation, so
  // v({x0}) != v(empty) for the conditional game, while the marginal game
  // gives (approximately) zero credit to x0 alone... i.e. v({x0}) = base.
  Dataset ds = MakeGaussianDataset(4000, {.seed = 29, .dims = 2, .rho = 0.9});
  auto model = MakeLambdaModel(2, [](const std::vector<double>& x) {
    return x[1];
  });
  // Pick an instance with large x0.
  std::vector<double> x = {2.0, 1.8};
  MarginalFeatureGame marginal(model, ds.x(), x, 200);
  auto cond = ConditionalGaussianGame::Create(model, ds.x(), x, 256);
  ASSERT_TRUE(cond.ok());
  std::vector<bool> only_x0 = {true, false};
  std::vector<bool> empty = {false, false};
  const double marg_delta =
      std::fabs(marginal.Value(only_x0) - marginal.Value(empty));
  const double cond_delta =
      std::fabs(cond->Value(only_x0) - cond->Value(empty));
  EXPECT_LT(marg_delta, 0.05);
  EXPECT_GT(cond_delta, 1.0);  // E[x1 | x0=2] ~ 1.8.
}

}  // namespace
}  // namespace xai
