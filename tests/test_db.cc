#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "db/complaint_debug.h"
#include "db/incremental.h"
#include "db/provenance_explain.h"
#include "db/query_shapley.h"
#include "model/linear_regression.h"
#include "model/metrics.h"
#include "relational/query.h"

#include <set>

namespace xai {
namespace {

TEST(TupleShapley, SumAggregateIsAdditive) {
  // SUM over a single relation is an additive game: each tuple's Shapley
  // value is exactly its own amount.
  Relation r("sales", {"amount"});
  const TupleId first = *r.Insert({10.0});
  (void)*r.Insert({25.0});
  (void)*r.Insert({-5.0});
  auto query_fn = MakeRelationQueryFn(r, first, [](const Relation& sub) {
    return Aggregate(sub, AggKind::kSum, "amount")->value;
  });
  auto phi = TupleShapley(3, query_fn);
  ASSERT_TRUE(phi.ok());
  EXPECT_NEAR((*phi)[0], 10.0, 1e-12);
  EXPECT_NEAR((*phi)[1], 25.0, 1e-12);
  EXPECT_NEAR((*phi)[2], -5.0, 1e-12);
}

TEST(TupleShapley, MaxAggregateCreditsTheMaximum) {
  Relation r("t", {"v"});
  const TupleId first = *r.Insert({1.0});
  (void)*r.Insert({3.0});
  (void)*r.Insert({10.0});
  auto query_fn = MakeRelationQueryFn(r, first, [](const Relation& sub) {
    if (sub.num_rows() == 0) return 0.0;
    return Aggregate(sub, AggKind::kMax, "v")->value;
  });
  auto phi = TupleShapley(3, query_fn);
  ASSERT_TRUE(phi.ok());
  // The max tuple dominates; efficiency: sum = max(all) - 0 = 10.
  EXPECT_GT((*phi)[2], (*phi)[1]);
  EXPECT_GT((*phi)[1], (*phi)[0]);
  EXPECT_NEAR((*phi)[0] + (*phi)[1] + (*phi)[2], 10.0, 1e-12);
}

TEST(TupleShapley, JoinQueryCountsMatchingPairs) {
  // Two relations; count of join results. Only tuple pairs that join
  // carry value; Shapley splits each pair's unit evenly between the two
  // sides (by symmetry).
  Relation orders("orders", {"cust"});
  const TupleId first_o = *orders.Insert({1});
  (void)*orders.Insert({2});
  Relation custs("custs", {"cust"});
  const TupleId first_c = *custs.Insert({1});

  // Game over all 3 endogenous tuples: first two slots are orders, the
  // third the customer.
  auto fn = [&](const std::vector<bool>& keep) {
    std::vector<bool> keep_orders = {keep[0], keep[1]};
    std::vector<bool> keep_custs = {keep[2]};
    Relation sub_o = orders.FilterByTupleId(keep_orders, first_o);
    Relation sub_c = custs.FilterByTupleId(keep_custs, first_c);
    auto joined = NaturalJoin(sub_o, sub_c);
    return joined.ok() ? static_cast<double>(joined->num_rows()) : 0.0;
  };
  auto phi = TupleShapley(3, fn);
  ASSERT_TRUE(phi.ok());
  // Join result: order(cust=1) x cust(1) = 1 row. Order(cust=2) is a
  // dummy player.
  EXPECT_NEAR((*phi)[1], 0.0, 1e-12);
  EXPECT_NEAR((*phi)[0], 0.5, 1e-12);
  EXPECT_NEAR((*phi)[2], 0.5, 1e-12);
}

TEST(TupleShapley, SamplingModeApproximatesExact) {
  Relation r("t", {"v"});
  const TupleId first = *r.Insert({1.0});
  for (int i = 1; i < 20; ++i) (void)*r.Insert({static_cast<double>(i + 1)});
  auto query_fn = MakeRelationQueryFn(r, first, [](const Relation& sub) {
    return Aggregate(sub, AggKind::kSum, "v")->value;
  });
  QueryShapleyOptions opts;
  opts.exact_up_to = 5;  // Force sampling for 20 tuples.
  opts.num_permutations = 400;
  auto phi = TupleShapley(20, query_fn, opts);
  ASSERT_TRUE(phi.ok());
  for (int i = 0; i < 20; ++i)
    EXPECT_NEAR((*phi)[static_cast<size_t>(i)], i + 1.0, 1e-9);
}

TEST(Responsibility, HandComputedCase) {
  // Provenance: {{1}, {2,3}}. Tuple 1: removing nothing else, answer
  // survives via {2,3}; contingency {2} (or {3}) kills it, so resp(1) =
  // 1/2. Tuple 2: witnesses not containing 2 = {{1}}; contingency {1};
  // resp = 1/2.
  WhyProvenance prov = {{1}, {2, 3}};
  auto resp = ComputeResponsibilities(prov);
  ASSERT_EQ(resp.size(), 3u);
  for (const auto& r : resp) {
    EXPECT_NEAR(r.responsibility, 0.5, 1e-12);
    EXPECT_EQ(r.contingency.size(), 1u);
  }
}

TEST(Responsibility, CounterfactualCauseScoresOne) {
  // Single witness {5, 6}: both tuples are counterfactual causes
  // (removing either alone kills the answer): responsibility 1.
  auto resp = ComputeResponsibilities({{5, 6}});
  ASSERT_EQ(resp.size(), 2u);
  EXPECT_DOUBLE_EQ(resp[0].responsibility, 1.0);
  EXPECT_DOUBLE_EQ(resp[1].responsibility, 1.0);
}

TEST(Responsibility, ManyDisjointWitnessesDiluteResponsibility) {
  // Witnesses {{1},{2},{3},{4}}: for tuple 1, contingency must kill the
  // other three singleton witnesses -> |Gamma| = 3, resp = 1/4.
  auto resp = ComputeResponsibilities({{1}, {2}, {3}, {4}});
  for (const auto& r : resp) EXPECT_NEAR(r.responsibility, 0.25, 1e-12);
}

TEST(Responsibility, DeletionImpactRanking) {
  std::vector<TupleId> lineage = {1, 2, 3};
  auto reevaluate = [](const std::vector<TupleId>& deleted) {
    double v = 100.0;
    for (TupleId t : deleted) v -= static_cast<double>(t) * 10.0;
    return v;
  };
  auto ranked = RankByDeletionImpact(lineage, reevaluate);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].tuple, 3u);
  EXPECT_NEAR(ranked[0].delta, -30.0, 1e-12);
  EXPECT_EQ(ranked[2].tuple, 1u);
}

TEST(IncrementalLinear, DowndatesMatchRetrainExactly) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(400, 6, 7, &w);
  IncrementalLinearRegression::Options opts{.lambda = 1e-4};
  auto inc = IncrementalLinearRegression::Fit(ds, opts);
  ASSERT_TRUE(inc.ok());

  // Remove rows 5, 17, 99 incrementally.
  std::vector<size_t> removed = {5, 17, 99};
  for (size_t i : removed)
    ASSERT_TRUE(inc->RemoveRow(ds.row(i), ds.y()[i]).ok());
  EXPECT_EQ(inc->remaining_rows(), 397u);

  Dataset reduced = ds.RemoveRows(removed);
  auto full = LinearRegression::Fit(reduced, {.lambda = 1e-4});
  ASSERT_TRUE(full.ok());
  std::vector<double> inc_theta = inc->Theta();
  for (size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(inc_theta[j], full->weights()[j], 1e-7) << "w" << j;
  EXPECT_NEAR(inc_theta[6], full->intercept(), 1e-7);
  // Predictions agree too.
  EXPECT_NEAR(inc->Predict(ds.row(0)), full->Predict(ds.row(0)), 1e-7);
}

TEST(IncrementalLinear, BatchRemoval) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(200, 4, 8, &w);
  auto inc = IncrementalLinearRegression::Fit(ds, {.lambda = 1e-4});
  ASSERT_TRUE(inc.ok());
  std::vector<size_t> removed = {0, 1, 2, 3, 4, 5, 6, 7};
  Matrix xr(removed.size(), ds.d());
  std::vector<double> yr(removed.size());
  for (size_t k = 0; k < removed.size(); ++k) {
    xr.SetRow(k, ds.row(removed[k]));
    yr[k] = ds.y()[removed[k]];
  }
  ASSERT_TRUE(inc->RemoveRows(xr, yr).ok());
  auto full = LinearRegression::Fit(ds.RemoveRows(removed), {.lambda = 1e-4});
  ASSERT_TRUE(full.ok());
  for (size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(inc->Theta()[j], full->weights()[j], 1e-6);
}

TEST(IncrementalLogistic, WarmRefreshTracksRetrain) {
  Dataset ds = MakeGaussianDataset(500, {.seed = 9, .dims = 4});
  LogisticRegression::Options opts{.lambda = 1e-2, .max_iter = 50,
                                   .tol = 1e-12};
  auto inc = IncrementalLogisticRegression::Fit(ds, opts);
  ASSERT_TRUE(inc.ok());
  std::vector<size_t> removed = {1, 2, 3, 10, 20, 30, 40};
  auto warm = inc->ThetaAfterRemoval(removed, 2);
  ASSERT_TRUE(warm.ok());
  auto cold = LogisticRegression::Fit(ds.RemoveRows(removed), opts);
  ASSERT_TRUE(cold.ok());
  for (size_t a = 0; a < warm->size(); ++a)
    EXPECT_NEAR((*warm)[a], cold->theta()[a], 1e-4);
}

TEST(ComplaintDebug, FindsPoisonedTrainingRows) {
  // Poison training rows of group x0 > 1 by flipping labels to 1; the
  // complaint "predicted-positive count in that serving group is too
  // high" should rank poisoned rows at the top.
  Dataset train = MakeGaussianDataset(400, {.seed = 70, .dims = 3});
  std::vector<size_t> poisoned;
  for (size_t i = 0; i < train.n(); ++i) {
    if (train.x()(i, 0) > 0.3 && train.y()[i] < 0.5) {
      train.mutable_y()[i] = 1.0;
      poisoned.push_back(i);
    }
  }
  ASSERT_GT(poisoned.size(), 10u);
  auto model = LogisticRegression::Fit(train, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());

  Dataset serving = MakeGaussianDataset(300, {.seed = 71, .dims = 3});
  Complaint complaint;
  complaint.direction = -1;  // Count too high.
  for (size_t v = 0; v < serving.n(); ++v)
    if (serving.x()(v, 0) > 0.3) complaint.serving_rows.push_back(v);
  ASSERT_FALSE(complaint.serving_rows.empty());

  auto suspects = RankComplaintSuspects(*model, train, serving, complaint);
  ASSERT_TRUE(suspects.ok());
  // Precision@k: of the top |poisoned| suspects, most are poisoned.
  std::set<size_t> truth(poisoned.begin(), poisoned.end());
  size_t hits = 0;
  for (size_t k = 0; k < poisoned.size(); ++k)
    if (truth.count((*suspects)[k].train_row)) ++hits;
  const double precision_at_k = static_cast<double>(hits) / poisoned.size();
  const double random_baseline =
      static_cast<double>(poisoned.size()) / static_cast<double>(train.n());
  EXPECT_GT(precision_at_k, 4.0 * random_baseline);
  EXPECT_GT(precision_at_k, 0.3);
}

}  // namespace
}  // namespace xai
