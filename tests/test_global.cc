#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/synthetic.h"
#include "feature/global_explanations.h"
#include "feature/tree_shap.h"
#include "model/gbdt.h"
#include "model/linear_regression.h"
#include "model/logistic_regression.h"

namespace xai {
namespace {

TEST(PermutationImportance, RanksByTrueWeight) {
  // Ground-truth weights decay as 1/(j+1): importance should follow.
  Dataset ds = MakeGaussianDataset(3000, {.seed = 3, .dims = 5});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  std::vector<double> imp = PermutationImportance(*model, ds);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[0], imp[3]);
  EXPECT_GT(imp[0], imp[4]);
  EXPECT_GT(imp[0], 0.01);
}

TEST(PermutationImportance, ZeroForIgnoredFeature) {
  Dataset ds = MakeGaussianDataset(1000, {.seed = 5, .dims = 3});
  auto model = MakeLambdaModel(3, [](const std::vector<double>& x) {
    return x[0] > 0 ? 0.9 : 0.1;  // Uses only feature 0.
  });
  std::vector<double> imp = PermutationImportance(model, ds);
  EXPECT_NEAR(imp[1], 0.0, 1e-12);
  EXPECT_NEAR(imp[2], 0.0, 1e-12);
  EXPECT_GT(imp[0], 0.1);
}

TEST(PartialDependence, LinearModelGivesLinearPd) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(800, 3, 11, &w);
  auto model = LinearRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  auto pd = ComputePartialDependence(*model, ds, 1, 10);
  ASSERT_TRUE(pd.ok());
  ASSERT_EQ(pd->grid.size(), 10u);
  // Slope of the PD curve == the model's weight on that feature.
  const double slope = (pd->average_prediction.back() -
                        pd->average_prediction.front()) /
                       (pd->grid.back() - pd->grid.front());
  EXPECT_NEAR(slope, model->weights()[1], 1e-9);
  EXPECT_FALSE(ComputePartialDependence(*model, ds, 99).ok());
}

TEST(PartialDependence, CategoricalGridEnumeratesCategories) {
  Dataset ds = MakeLoanDataset(500);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 20});
  ASSERT_TRUE(model.ok());
  auto pd = ComputePartialDependence(*model, ds, 5);  // education, 4 cats.
  ASSERT_TRUE(pd.ok());
  EXPECT_EQ(pd->grid.size(), 4u);
  // Better education should not decrease approval on average (monotone
  // generative coefficient).
  EXPECT_GE(pd->average_prediction[3], pd->average_prediction[0] - 0.02);
}

TEST(IceCurves, AverageOfIceIsPd) {
  Dataset ds = MakeGaussianDataset(300, {.seed = 9, .dims = 3});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  const size_t rows = 40;
  auto ice = ComputeIceCurves(*model, ds, 0, 8, rows);
  auto pd = ComputePartialDependence(*model, ds, 0, 8, rows);
  ASSERT_TRUE(ice.ok() && pd.ok());
  ASSERT_EQ(ice->curves.size(), rows);
  for (size_t g = 0; g < ice->grid.size(); ++g) {
    double avg = 0.0;
    for (const auto& curve : ice->curves) avg += curve[g] / rows;
    EXPECT_NEAR(avg, pd->average_prediction[g], 1e-9);
  }
}

TEST(ShapSummaryStats, DirectionTracksWeightSign) {
  Dataset ds = MakeLoanDataset(800);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  ASSERT_TRUE(gbdt.ok());
  TreeShapExplainer explainer(*gbdt, ds.schema());
  auto summary = SummarizeAttributions(&explainer, ds, 80);
  ASSERT_TRUE(summary.ok());
  auto income = ds.schema().FeatureIndex("income");
  auto debt = ds.schema().FeatureIndex("debt");
  ASSERT_TRUE(income.ok() && debt.ok());
  EXPECT_GT(summary->direction[*income], 0.3);   // More income -> approve.
  EXPECT_LT(summary->direction[*debt], -0.1);    // More debt -> deny.
  EXPECT_GT(summary->mean_abs_attribution[*income],
            summary->mean_abs_attribution[7]);   // income >> married.
}

TEST(SubmodularPick, CoversFeaturesAndRespectsBudget) {
  Dataset ds = MakeLoanDataset(400);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 20});
  ASSERT_TRUE(gbdt.ok());
  TreeShapExplainer explainer(*gbdt, ds.schema());
  auto picks = SubmodularPick(&explainer, ds, 3, 40);
  ASSERT_TRUE(picks.ok());
  EXPECT_LE(picks->size(), 3u);
  EXPECT_FALSE(picks->empty());
  // Picks are distinct rows.
  std::vector<size_t> sorted = *picks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // The first pick alone should already touch several features.
  auto attr = explainer.Explain(ds.row((*picks)[0]));
  ASSERT_TRUE(attr.ok());
  size_t nonzero = 0;
  for (double v : attr->values)
    if (std::fabs(v) > 1e-9) ++nonzero;
  EXPECT_GE(nonzero, 3u);
}

}  // namespace
}  // namespace xai
