#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/game.h"
#include "data/synthetic.h"
#include "feature/prototypes.h"
#include "feature/shapley.h"

namespace xai {
namespace {

// ---------------- MMD-critic prototypes & criticisms ----------------

/// Two very tight, well-separated clusters plus a tiny far-away outlier
/// group (rows 80-82). Tight clusters make the MMD witness ~0 on cluster
/// points once each cluster holds a prototype, so the outliers carry the
/// largest witness values.
Dataset TwoClustersPlusOutlier() {
  Rng rng(7);
  Matrix x(83, 2);
  std::vector<double> y(83, 0.0);
  for (size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.Gaussian(-5.0, 0.05);
    x(i, 1) = rng.Gaussian(-5.0, 0.05);
  }
  for (size_t i = 40; i < 80; ++i) {
    x(i, 0) = rng.Gaussian(5.0, 0.05);
    x(i, 1) = rng.Gaussian(5.0, 0.05);
  }
  for (size_t i = 80; i < 83; ++i) {
    x(i, 0) = rng.Gaussian(0.0, 0.05);
    x(i, 1) = rng.Gaussian(30.0, 0.05);
  }
  return Dataset(Schema({FeatureSpec::Numeric("a"),
                         FeatureSpec::Numeric("b")}),
                 x, y);
}

TEST(Prototypes, CoverBothClusters) {
  Dataset ds = TwoClustersPlusOutlier();
  auto report = SelectPrototypes(ds, {.num_prototypes = 2,
                                      .num_criticisms = 1});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->prototypes.size(), 2u);
  // One prototype per cluster (one index < 40, one in [40, 80)).
  const bool covers_left = (report->prototypes[0] < 40) ||
                           (report->prototypes[1] < 40);
  const bool covers_right =
      (report->prototypes[0] >= 40 && report->prototypes[0] < 80) ||
      (report->prototypes[1] >= 40 && report->prototypes[1] < 80);
  EXPECT_TRUE(covers_left);
  EXPECT_TRUE(covers_right);
  EXPECT_GE(report->mmd2, -1e-9);  // True squared MMD.
}

TEST(Prototypes, CriticismFindsTheOutlierGroup) {
  Dataset ds = TwoClustersPlusOutlier();
  auto report = SelectPrototypes(ds, {.num_prototypes = 4,
                                      .num_criticisms = 1});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->criticisms.size(), 1u);
  EXPECT_GE(report->criticisms[0], 80u) << "criticism should be an outlier";
}

TEST(Prototypes, MmdDecreasesWithMorePrototypes) {
  Dataset ds = MakeGaussianDataset(200, {.seed = 5, .dims = 3});
  double prev = 1e300;
  for (size_t m : {1, 2, 4, 8, 16}) {
    auto report = SelectPrototypes(ds, {.num_prototypes = m,
                                        .num_criticisms = 0});
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->mmd2, prev + 1e-12) << "m=" << m;
    prev = report->mmd2;
  }
}

TEST(Prototypes, Validation) {
  Dataset ds = MakeGaussianDataset(20, {.seed = 1, .dims = 2});
  EXPECT_FALSE(SelectPrototypes(ds, {.num_prototypes = 0}).ok());
  EXPECT_FALSE(SelectPrototypes(ds, {.num_prototypes = 100}).ok());
  // Prototypes and criticisms are disjoint.
  auto report = SelectPrototypes(ds, {.num_prototypes = 5,
                                      .num_criticisms = 5});
  ASSERT_TRUE(report.ok());
  std::set<size_t> protos(report->prototypes.begin(),
                          report->prototypes.end());
  for (size_t c : report->criticisms) EXPECT_EQ(protos.count(c), 0u);
}

// ---------------- Owen values ----------------

TEST(OwenValues, AdditiveGameMatchesShapley) {
  LambdaGame game(4, [](const std::vector<bool>& s) {
    return (s[0] ? 1.0 : 0.0) + (s[1] ? 2.0 : 0.0) + (s[2] ? 3.0 : 0.0) +
           (s[3] ? -1.0 : 0.0);
  });
  Rng rng(3);
  auto owen = OwenValues(game, {{0, 1}, {2, 3}}, 400, &rng);
  ASSERT_TRUE(owen.ok());
  EXPECT_NEAR((*owen)[0], 1.0, 1e-9);
  EXPECT_NEAR((*owen)[1], 2.0, 1e-9);
  EXPECT_NEAR((*owen)[2], 3.0, 1e-9);
  EXPECT_NEAR((*owen)[3], -1.0, 1e-9);
}

TEST(OwenValues, CrossGroupSynergySplitsAtGroupLevel) {
  // v = 1 iff players 0 (group A) and 2 (group B) both present. With the
  // grouping {{0,1},{2,3}}: group-level symmetric -> each group gets 0.5,
  // carried entirely by its synergy member.
  LambdaGame game(4, [](const std::vector<bool>& s) {
    return s[0] && s[2] ? 1.0 : 0.0;
  });
  Rng rng(5);
  auto owen = OwenValues(game, {{0, 1}, {2, 3}}, 4000, &rng);
  ASSERT_TRUE(owen.ok());
  EXPECT_NEAR((*owen)[0], 0.5, 0.03);
  EXPECT_NEAR((*owen)[2], 0.5, 0.03);
  EXPECT_NEAR((*owen)[1], 0.0, 1e-9);  // Dummies stay zero exactly.
  EXPECT_NEAR((*owen)[3], 0.0, 1e-9);
}

TEST(OwenValues, WithinGroupSynergyDiffersFromShapley) {
  // v = 1 iff 0 and 1 (same group) both present, and player 2 "blocks"
  // with a penalty when alone... keep it simple: synergy within group A.
  LambdaGame game(3, [](const std::vector<bool>& s) {
    return s[0] && s[1] ? 1.0 : 0.0;
  });
  Rng rng(7);
  // Group A = {0,1}, B = {2}: within A, members are symmetric -> 0.5 each.
  auto owen = OwenValues(game, {{0, 1}, {2}}, 2000, &rng);
  ASSERT_TRUE(owen.ok());
  EXPECT_NEAR((*owen)[0], 0.5, 0.03);
  EXPECT_NEAR((*owen)[1], 0.5, 0.03);
  EXPECT_NEAR((*owen)[2], 0.0, 1e-9);
  // Efficiency: sums to v(N) - v(empty) = 1.
  EXPECT_NEAR((*owen)[0] + (*owen)[1] + (*owen)[2], 1.0, 1e-9);
}

TEST(OwenValues, ValidatesPartition) {
  LambdaGame game(3, [](const std::vector<bool>&) { return 0.0; });
  Rng rng(1);
  EXPECT_FALSE(OwenValues(game, {{0, 1}}, 10, &rng).ok());        // Missing 2.
  EXPECT_FALSE(OwenValues(game, {{0, 1}, {1, 2}}, 10, &rng).ok());  // Dup.
  EXPECT_FALSE(OwenValues(game, {{0, 1}, {2, 9}}, 10, &rng).ok());  // Range.
  EXPECT_TRUE(OwenValues(game, {{0, 1}, {2}}, 10, &rng).ok());
}

}  // namespace
}  // namespace xai
