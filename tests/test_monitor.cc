// Tests for the continuous-monitoring pipeline: Prometheus exposition,
// the sampler's time-series rings, SLO burn-rate alerting, the
// attribution-drift watchdog, the scrape endpoint, and the snapshot
// export — plus a scrape-while-writing hammer for TSan.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/explanation.h"
#include "eval/drift.h"
#include "obs/obs.h"

namespace xai {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSampler;
using obs::MonitorOptions;
using obs::MonitorServer;
using obs::SeriesPoint;
using obs::SeriesRing;
using obs::SloObjective;
using obs::SloTracker;
using obs::SloTrackerOptions;

// Runs FIRST in this binary, before anything registers a metric: an
// empty registry must render to a valid exposition carrying only the
// build-identity preamble (build_info + uptime — always present so any
// scrape identifies the binary) and an empty snapshot JSON, not crash
// or emit partial families.
TEST(MonitorEmptyRegistry, ScrapeAndJsonAreValid) {
  obs::SetEnabled(true);
  const std::string prom = obs::MetricsToProm();
  EXPECT_NE(prom.find("xaidb_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("xaidb_uptime_seconds "), std::string::npos);
  // ...and nothing else: no registry-derived families on an empty registry.
  EXPECT_EQ(prom.find("_total"), std::string::npos);
  EXPECT_EQ(prom.find("_bucket"), std::string::npos);
  const std::string json = obs::MetricsToJson();
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_unix_ms\""), std::string::npos);
  obs::SetEnabled(false);
}

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    MetricsRegistry::Global().ResetAll();
    obs::SetEnabled(false);
  }
};

TEST_F(MonitorTest, SeriesRingDropsOldest) {
  SeriesRing ring(4);
  for (uint64_t i = 0; i < 10; ++i)
    ring.Push(SeriesPoint{i, static_cast<double>(i)});
  EXPECT_EQ(ring.size(), 4u);
  const std::vector<SeriesPoint> pts = ring.Points();
  ASSERT_EQ(pts.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pts[i].unix_ms, 6u + i);  // oldest → newest, 6..9 survive
    EXPECT_DOUBLE_EQ(pts[i].value, 6.0 + static_cast<double>(i));
  }
}

TEST_F(MonitorTest, PromExpositionFormat) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("mon.test.requests")->Add(7);
  reg.GetGauge("mon.test.depth")->Set(3.5);
  obs::Histogram* h = reg.GetHistogram("mon.test.lat_us");
  h->Observe(1.0);
  h->Observe(3.0);
  h->Observe(1000.0);

  const std::string prom = obs::MetricsToProm();
  // Names are sanitized (dots → underscores) and prefixed.
  EXPECT_NE(prom.find("# TYPE xaidb_mon_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("xaidb_mon_test_requests_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE xaidb_mon_test_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("xaidb_mon_test_depth 3.5"), std::string::npos);
  // Histogram: cumulative buckets ending in +Inf, plus _sum and _count.
  EXPECT_NE(prom.find("# TYPE xaidb_mon_test_lat_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("xaidb_mon_test_lat_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("xaidb_mon_test_lat_us_sum 1004"), std::string::npos);
  EXPECT_NE(prom.find("xaidb_mon_test_lat_us_count 3"), std::string::npos);
  // Cumulative monotonicity: the le="1" bucket holds exactly the 1.0 obs.
  EXPECT_NE(prom.find("xaidb_mon_test_lat_us_bucket{le=\"1\"} 1"),
            std::string::npos);
}

TEST_F(MonitorTest, SamplerCounterRatesAndGaugeSeries) {
  auto& reg = MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("mon.samp.events");
  obs::Gauge* g = reg.GetGauge("mon.samp.level");

  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 16});
  g->Set(1.0);
  sampler.TickNow();  // first tick: gauges only, no derived series yet
  EXPECT_TRUE(sampler.Series("mon.samp.events.rate").empty());
  EXPECT_EQ(sampler.Series("mon.samp.level").size(), 1u);

  c->Add(50);
  g->Set(2.0);
  sampler.TickNow();
  const auto rate = sampler.Series("mon.samp.events.rate");
  ASSERT_EQ(rate.size(), 1u);
  EXPECT_GT(rate[0].value, 0.0);  // 50 events over a tiny positive dt
  const auto level = sampler.Series("mon.samp.level");
  ASSERT_EQ(level.size(), 2u);
  EXPECT_DOUBLE_EQ(level[1].value, 2.0);
  EXPECT_EQ(sampler.ticks(), 2u);
}

TEST_F(MonitorTest, SamplerRingWraparound) {
  auto& reg = MetricsRegistry::Global();
  obs::Gauge* g = reg.GetGauge("mon.wrap.g");
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 4});
  for (int i = 0; i < 10; ++i) {
    g->Set(static_cast<double>(i));
    sampler.TickNow();
  }
  const auto pts = sampler.Series("mon.wrap.g");
  ASSERT_EQ(pts.size(), 4u);  // capacity, not tick count
  EXPECT_DOUBLE_EQ(pts[0].value, 6.0);
  EXPECT_DOUBLE_EQ(pts[3].value, 9.0);
  EXPECT_EQ(sampler.ticks(), 10u);
}

TEST_F(MonitorTest, SamplerHistogramWindowPercentiles) {
  auto& reg = MetricsRegistry::Global();
  obs::Histogram* h = reg.GetHistogram("mon.samp.h");
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 16});
  sampler.TickNow();
  // Window of observations all equal to 100 → p50 and p99 land in the
  // (64, 128] bucket regardless of interpolation details.
  for (int i = 0; i < 64; ++i) h->Observe(100.0);
  sampler.TickNow();
  const auto p50 = sampler.Series("mon.samp.h.p50");
  const auto p99 = sampler.Series("mon.samp.h.p99");
  ASSERT_EQ(p50.size(), 1u);
  ASSERT_EQ(p99.size(), 1u);
  EXPECT_GT(p50[0].value, 64.0);
  EXPECT_LE(p50[0].value, 128.0);
  EXPECT_GT(p99[0].value, 64.0);
  EXPECT_LE(p99[0].value, 128.0);
  // An empty window (no new observations) adds no percentile point.
  sampler.TickNow();
  EXPECT_EQ(sampler.Series("mon.samp.h.p50").size(), 1u);
}

TEST_F(MonitorTest, SloZeroTrafficNeverAlerts) {
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 16});
  SloTracker slo({{"lat", "mon.slo.quiet_us", 1000.0, "", "", 0.01}});
  sampler.AddTickObserver(slo.Observer());
  for (int i = 0; i < 20; ++i) sampler.TickNow();
  EXPECT_EQ(slo.alert_count(), 0u);
  EXPECT_DOUBLE_EQ(slo.BurnRate("lat", "5s"), 0.0);
  EXPECT_DOUBLE_EQ(slo.BurnRate("lat", "60s"), 0.0);
}

TEST_F(MonitorTest, SloBurnRateFiresOnBadTraffic) {
  auto& reg = MetricsRegistry::Global();
  obs::Histogram* h = reg.GetHistogram("mon.slo.lat_us");
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 16});
  SloTracker slo({{"lat", "mon.slo.lat_us", 1000.0, "", "", 0.01}});
  sampler.AddTickObserver(slo.Observer());

  sampler.TickNow();  // baseline reading
  // Every observation blows the 1ms objective: bad fraction 1.0 against a
  // 1% budget → burn rate 100, far over both windows' thresholds.
  for (int i = 0; i < 100; ++i) h->Observe(1e6);
  sampler.TickNow();
  EXPECT_GE(slo.BurnRate("lat", "5s"), 10.0);
  const uint64_t fired = slo.alert_count();
  EXPECT_GE(fired, 1u);
  const std::vector<obs::Alert> alerts = slo.alerts();
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts[0].objective, "lat");
  EXPECT_FALSE(alerts[0].severity.empty());
  EXPECT_GT(alerts[0].burn_rate, 1.0);
  // Edge-triggered: staying in violation does not re-fire per tick.
  sampler.TickNow();
  sampler.TickNow();
  EXPECT_EQ(slo.alert_count(), fired);
}

TEST_F(MonitorTest, SloRatioObjective) {
  auto& reg = MetricsRegistry::Global();
  obs::Counter* bad = reg.GetCounter("mon.slo.miss");
  obs::Counter* total = reg.GetCounter("mon.slo.all");
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 16});
  SloTracker slo({{"miss", "", 0.0, "mon.slo.miss", "mon.slo.all", 0.1}});
  sampler.AddTickObserver(slo.Observer());

  sampler.TickNow();
  total->Add(100);  // zero misses: burn 0
  sampler.TickNow();
  EXPECT_DOUBLE_EQ(slo.BurnRate("miss", "5s"), 0.0);
  EXPECT_EQ(slo.alert_count(), 0u);
  bad->Add(50);
  total->Add(50);  // 50/150 in-window bad → burn well over budget
  sampler.TickNow();
  EXPECT_GT(slo.BurnRate("miss", "5s"), 1.0);
  EXPECT_GE(slo.alert_count(), 1u);
}

FeatureAttribution MakeAttr(std::vector<double> values) {
  FeatureAttribution a;
  a.values = std::move(values);
  return a;
}

TEST_F(MonitorTest, DriftConstantStreamNeverAlerts) {
  DriftWatchdogOptions opts;
  opts.reference_window = 16;
  opts.window = 16;
  opts.min_window = 8;
  opts.check_every = 1;
  AttributionDriftWatchdog wd(opts);
  for (int i = 0; i < 200; ++i) wd.Observe(MakeAttr({1.0, 2.0, 3.0}));
  const DriftReport r = wd.Report();
  EXPECT_TRUE(r.reference_pinned);
  EXPECT_FALSE(r.alerting);
  EXPECT_EQ(wd.alert_count(), 0u);
  EXPECT_NEAR(r.l1, 0.0, 1e-12);
  EXPECT_NEAR(r.psi, 0.0, 1e-12);
}

TEST_F(MonitorTest, DriftDetectsMassShift) {
  DriftWatchdogOptions opts;
  opts.reference_window = 16;
  opts.window = 16;
  opts.min_window = 8;
  opts.check_every = 1;
  AttributionDriftWatchdog wd(opts);
  // Reference: mass concentrated on feature 0.
  for (int i = 0; i < 16; ++i) wd.Observe(MakeAttr({10.0, 1.0, 1.0}));
  EXPECT_TRUE(wd.Report().reference_pinned);
  // Shift: mass moves to feature 2.
  for (int i = 0; i < 32; ++i) wd.Observe(MakeAttr({1.0, 1.0, 10.0}));
  const DriftReport r = wd.Report();
  EXPECT_TRUE(r.alerting);
  EXPECT_GE(wd.alert_count(), 1u);
  EXPECT_GT(r.l1, opts.l1_threshold);
  const std::vector<obs::Alert> alerts = wd.alerts();
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts[0].objective, "attribution_drift");
  // Signs don't matter, only mass: a sign-flipped but same-|phi| stream
  // is not additional drift.
  const double l1_before = r.l1;
  for (int i = 0; i < 16; ++i) wd.Observe(MakeAttr({-1.0, 1.0, -10.0}));
  EXPECT_NEAR(wd.Report().l1, l1_before, 1e-9);
}

TEST_F(MonitorTest, DriftZeroMassNeverDividesOrAlerts) {
  DriftWatchdogOptions opts;
  opts.reference_window = 8;
  opts.window = 8;
  opts.min_window = 4;
  opts.check_every = 1;
  AttributionDriftWatchdog wd(opts);
  for (int i = 0; i < 64; ++i) wd.Observe(MakeAttr({0.0, 0.0, 0.0}));
  const DriftReport r = wd.Report();
  // All-zero mass: profile undefined → reference never pins, no alert,
  // no NaN anywhere.
  EXPECT_FALSE(r.reference_pinned);
  EXPECT_FALSE(r.alerting);
  EXPECT_EQ(wd.alert_count(), 0u);
  EXPECT_EQ(r.l1, r.l1);  // not NaN
  EXPECT_EQ(r.psi, r.psi);
}

TEST_F(MonitorTest, DriftArityMismatchIsSkipped) {
  DriftWatchdogOptions opts;
  opts.reference_window = 4;
  opts.min_window = 2;
  opts.check_every = 1;
  AttributionDriftWatchdog wd(opts);
  wd.Observe(MakeAttr({1.0, 2.0}));           // latches arity 2
  wd.Observe(MakeAttr({1.0, 2.0, 3.0}));      // skipped
  wd.Observe(MakeAttr({1.0, 2.0}));
  EXPECT_EQ(wd.Report().observed, 2u);
}

TEST_F(MonitorTest, MonitorServerScrapeRoundtrip) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("mon.http.hits")->Add(3);
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 8});
  sampler.TickNow();

  MonitorServer server(&sampler);
  const Status st = server.Start(0);
  if (!st.ok()) GTEST_SKIP() << "cannot bind a local socket: "
                             << st.ToString();
  ASSERT_GT(server.port(), 0);

  const Result<std::string> prom = obs::HttpGetLocal(server.port(),
                                                     "/metrics");
  ASSERT_TRUE(prom.ok()) << prom.status().ToString();
  EXPECT_NE(prom.value().find("xaidb_mon_http_hits_total 3"),
            std::string::npos);

  const Result<std::string> json = obs::HttpGetLocal(server.port(), "/json");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json.value().find("\"schema_version\""), std::string::npos);

  const Result<std::string> series = obs::HttpGetLocal(server.port(),
                                                       "/series");
  ASSERT_TRUE(series.ok());
  EXPECT_NE(series.value().find("\"series\""), std::string::npos);

  const Result<std::string> missing = obs::HttpGetLocal(server.port(),
                                                        "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing.value().find("not found"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 4u);
  server.Stop();
}

TEST_F(MonitorTest, ExpositionCarriesBuildInfoAndUptime) {
  // Build identity and uptime lead every exposition — even one over an
  // otherwise-quiet registry — so any scrape can tell which binary it hit.
  const std::string prom = obs::MetricsToProm();
  EXPECT_NE(prom.find("xaidb_build_info{version=\""), std::string::npos);
  EXPECT_NE(prom.find("git_sha=\""), std::string::npos);
  EXPECT_NE(prom.find("xaidb_uptime_seconds "), std::string::npos);
  EXPECT_NE(std::string(obs::BuildVersion()).find('.'), std::string::npos);
  EXPECT_GT(obs::UptimeSeconds(), 0.0);
}

TEST_F(MonitorTest, HealthzReportsQueueDepthAndServingVersion) {
  auto& reg = MetricsRegistry::Global();
  reg.GetGauge("serve.queue_depth")->Set(7.0);
  reg.GetGauge("serve.model_version")->Set(3.0);
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 8});
  MonitorServer server(&sampler);
  const Status st = server.Start(0);
  if (!st.ok()) GTEST_SKIP() << "cannot bind a local socket: "
                             << st.ToString();

  const Result<std::string> health = obs::HttpGetLocal(server.port(),
                                                       "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_NE(health.value().find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.value().find("\"queue_depth\": 7"), std::string::npos);
  EXPECT_NE(health.value().find("\"serving_model_version\": 3"),
            std::string::npos);
  EXPECT_NE(health.value().find("\"uptime_seconds\""), std::string::npos);
  server.Stop();
}

TEST_F(MonitorTest, WriteSnapshotJsonSchema) {
  auto& reg = MetricsRegistry::Global();
  obs::Gauge* g = reg.GetGauge("mon.snap.g");
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1000), 8});
  SloTracker slo({{"lat", "mon.snap.h", 1000.0, "", "", 0.01}});
  sampler.AddTickObserver(slo.Observer());
  g->Set(42.0);
  sampler.TickNow();
  sampler.TickNow();

  const std::string path =
      ::testing::TempDir() + "/xaidb_monitor_snapshot.json";
  ASSERT_TRUE(obs::WriteSnapshotJson(sampler, path, &slo).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_unix_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ticks\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"mon.snap.g\""), std::string::npos);
  EXPECT_NE(json.find("\"alerts\""), std::string::npos);
  std::remove(path.c_str());
}

// TSan target: writers hammer the registry while scrapes, sampler ticks,
// and series reads run concurrently — the monitoring read path must never
// race the hot write path.
TEST_F(MonitorTest, ConcurrentScrapeWhileWriting) {
  auto& reg = MetricsRegistry::Global();
  MetricsSampler sampler(MonitorOptions{std::chrono::milliseconds(1), 32});
  SloTracker slo({{"lat", "mon.hammer.h", 100.0, "", "", 0.01}});
  sampler.AddTickObserver(slo.Observer());
  sampler.Start();

  constexpr int kWriters = 4, kReaders = 4, kIters = 2000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&reg, w] {
      obs::Counter* c = reg.GetCounter("mon.hammer.c");
      obs::Gauge* g = reg.GetGauge("mon.hammer.g");
      obs::Histogram* h = reg.GetHistogram("mon.hammer.h");
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        g->Set(static_cast<double>(i));
        h->Observe(static_cast<double>((w + 1) * i % 2048));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&sampler, r] {
      for (int i = 0; i < 50; ++i) {
        if (r % 2 == 0) {
          (void)obs::MetricsToProm();
        } else {
          (void)sampler.SeriesSnapshot();
          (void)sampler.Series("mon.hammer.c.rate");
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  sampler.Stop();

  EXPECT_EQ(reg.GetCounter("mon.hammer.c")->Value(),
            static_cast<uint64_t>(kWriters) * kIters);
  EXPECT_GE(sampler.ticks(), 1u);
}

}  // namespace
}  // namespace xai
