// Flat-vs-node equivalence suite for the compiled FlatEnsemble runtime
// (label: flat, runs in the TSan CI job).
//
// The contract under test: every prediction and every TreeSHAP value
// produced off the flat SoA arrays is the SAME DOUBLE as the node-based
// Tree reference — for degenerate single-leaf trees, rows sitting exactly
// on a split threshold, deep trees, any thread count, and across a
// serialize -> load -> recompile round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "feature/tree_shap.h"
#include "math/matrix.h"
#include "model/decision_tree.h"
#include "model/flat_tree.h"
#include "model/gbdt.h"
#include "model/serialize.h"

namespace xai {
namespace {

/// Node-based reference margin: base + lr * sum_t tree_t, accumulated in
/// tree order exactly like the flat path claims to.
std::vector<double> NodeMarginBatch(const GradientBoostedTrees& gbdt,
                                    const Matrix& x) {
  std::vector<double> out(x.rows(), gbdt.base_score());
  for (const Tree& t : gbdt.trees())
    t.AccumulateBatch(x, gbdt.learning_rate(), &out);
  return out;
}

TEST(FlatTree, GbdtFlatMatchesNodeReferenceExactly) {
  Dataset ds = MakeLoanDataset(600);
  auto gbdt = GradientBoostedTrees::Fit(
      ds, {.num_rounds = 40, .tree = {.max_depth = 5, .min_samples_leaf = 3}});
  ASSERT_TRUE(gbdt.ok());
  const std::vector<double> flat = gbdt->PredictMarginBatch(ds.x());
  const std::vector<double> node = NodeMarginBatch(*gbdt, ds.x());
  for (size_t i = 0; i < ds.n(); ++i) {
    EXPECT_EQ(flat[i], node[i]) << "row " << i;
    // Scalar path routes through the same arrays.
    EXPECT_EQ(gbdt->PredictMargin(ds.row(i)), node[i]) << "row " << i;
  }
}

TEST(FlatTree, ForestAndDtreeFlatMatchNodeReferenceExactly) {
  Dataset ds = MakeCreditDataset(400);
  auto forest = RandomForest::Fit(ds, {.num_trees = 20});
  ASSERT_TRUE(forest.ok());
  auto dtree = DecisionTree::Fit(ds, {.max_depth = 7, .min_samples_leaf = 2});
  ASSERT_TRUE(dtree.ok());
  const std::vector<double> forest_flat = forest->PredictBatch(ds.x());
  const std::vector<double> dtree_flat = dtree->PredictBatch(ds.x());
  for (size_t i = 0; i < ds.n(); ++i) {
    double node_sum = 0.0;
    for (const Tree& t : forest->trees()) node_sum += t.Predict(ds.row(i));
    EXPECT_EQ(forest_flat[i],
              node_sum / static_cast<double>(forest->trees().size()));
    EXPECT_EQ(dtree_flat[i], dtree->tree().Predict(ds.row(i)));
  }
}

TEST(FlatTree, BoundaryRowsExactlyOnThresholdRouteIdentically) {
  // x == threshold must go left in both runtimes. Probe every internal
  // node of a fitted ensemble by planting its threshold into a real row.
  Dataset ds = MakeLoanDataset(500);
  auto gbdt = GradientBoostedTrees::Fit(
      ds, {.num_rounds = 10, .tree = {.max_depth = 4, .min_samples_leaf = 5}});
  ASSERT_TRUE(gbdt.ok());
  Rng rng(123);
  std::vector<std::vector<double>> probes;
  for (const Tree& t : gbdt->trees())
    for (const TreeNode& n : t.nodes) {
      if (n.is_leaf()) continue;
      std::vector<double> row =
          ds.row(static_cast<size_t>(rng.NextInt(ds.n())));
      row[static_cast<size_t>(n.feature)] = n.threshold;
      probes.push_back(std::move(row));
    }
  ASSERT_FALSE(probes.empty());
  Matrix m(probes.size(), ds.d());
  for (size_t i = 0; i < probes.size(); ++i) m.SetRow(i, probes[i]);
  const std::vector<double> flat = gbdt->PredictMarginBatch(m);
  const std::vector<double> node = NodeMarginBatch(*gbdt, m);
  for (size_t i = 0; i < probes.size(); ++i)
    EXPECT_EQ(flat[i], node[i]) << "probe " << i;
}

TEST(FlatTree, HandBuiltBoundarySplitGoesLeft) {
  Tree tree;
  tree.nodes.resize(3);
  tree.nodes[0] = {.feature = 0, .threshold = 1.5, .left = 1, .right = 2,
                   .value = 0.0, .cover = 10.0};
  tree.nodes[1] = {.feature = -1, .threshold = 0.0, .left = -1, .right = -1,
                   .value = 10.0, .cover = 6.0};
  tree.nodes[2] = {.feature = -1, .threshold = 0.0, .left = -1, .right = -1,
                   .value = 20.0, .cover = 4.0};
  const FlatEnsemble flat = FlatEnsemble::Compile(tree);
  const double on_boundary[] = {1.5};
  const double above[] = {1.5000000000000002};
  EXPECT_EQ(flat.PredictTree(0, on_boundary), 10.0);
  EXPECT_EQ(flat.PredictTree(0, above), 20.0);
  EXPECT_EQ(flat.depth(0), 1);
  EXPECT_EQ(flat.expected_value(0), tree.ExpectedValue());
}

TEST(FlatTree, SingleLeafDegenerateTree) {
  Tree leaf_only;
  leaf_only.nodes.resize(1);
  leaf_only.nodes[0] = {.feature = -1, .threshold = 0.0, .left = -1,
                        .right = -1, .value = 3.25, .cover = 7.0};
  const FlatEnsemble flat = FlatEnsemble::Compile(leaf_only);
  ASSERT_EQ(flat.num_trees(), 1u);
  EXPECT_EQ(flat.depth(0), 0);
  EXPECT_TRUE(flat.is_leaf(flat.root(0)));
  const double x[] = {0.0, 1.0};
  EXPECT_EQ(flat.PredictTree(0, x), 3.25);
  EXPECT_EQ(flat.expected_value(0), 3.25);
  std::vector<double> out(3, 1.0);
  Matrix rows(3, 2);
  flat.AccumulateTree(0, rows, 2.0, &out);
  for (double v : out) EXPECT_EQ(v, 1.0 + 2.0 * 3.25);
  // TreeSHAP of a constant tree: no feature gets credit.
  std::vector<double> phi(2, 0.0);
  FlatTreeShapValues(flat, 0, x, &phi);
  EXPECT_EQ(phi[0], 0.0);
  EXPECT_EQ(phi[1], 0.0);
}

TEST(FlatTree, DeepTreeEquivalenceOnRandomRows) {
  Dataset ds = MakeGaussianDataset(1500, {.seed = 9, .dims = 6});
  auto dtree =
      DecisionTree::Fit(ds, {.max_depth = 14, .min_samples_leaf = 1});
  ASSERT_TRUE(dtree.ok());
  ASSERT_GE(dtree->tree().MaxDepth(), 10);
  Rng rng(77);
  Matrix probes(500, ds.d());
  for (size_t i = 0; i < probes.rows(); ++i) {
    std::vector<double> row = ds.row(static_cast<size_t>(rng.NextInt(ds.n())));
    for (double& v : row) v += rng.Gaussian(0.0, 0.3);
    probes.SetRow(i, row);
  }
  const std::vector<double> flat = dtree->PredictBatch(probes);
  for (size_t i = 0; i < probes.rows(); ++i)
    EXPECT_EQ(flat[i], dtree->tree().Predict(probes.Row(i))) << "row " << i;
}

TEST(FlatTree, ExpectedValuePrecomputedBitExact) {
  Dataset ds = MakeLoanDataset(400);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 15});
  ASSERT_TRUE(gbdt.ok());
  const FlatEnsemble& flat = gbdt->flat();
  ASSERT_EQ(flat.num_trees(), gbdt->trees().size());
  for (size_t t = 0; t < flat.num_trees(); ++t)
    EXPECT_EQ(flat.expected_value(t), gbdt->trees()[t].ExpectedValue());
}

TEST(FlatTree, FlatTreeShapMatchesNodeWalkerBitExact) {
  Dataset ds = MakeLoanDataset(500);
  auto gbdt = GradientBoostedTrees::Fit(
      ds, {.num_rounds = 25, .tree = {.max_depth = 4, .min_samples_leaf = 4}});
  ASSERT_TRUE(gbdt.ok());
  const FlatEnsemble& flat = gbdt->flat();
  for (size_t i = 0; i < 40; ++i) {
    const std::vector<double> x = ds.row(i);
    for (size_t t = 0; t < flat.num_trees(); ++t) {
      std::vector<double> node_phi(ds.d(), 0.0);
      std::vector<double> flat_phi(ds.d(), 0.0);
      TreeShapValues(gbdt->trees()[t], x, &node_phi);
      FlatTreeShapValues(flat, t, x.data(), &flat_phi);
      for (size_t j = 0; j < ds.d(); ++j)
        EXPECT_EQ(flat_phi[j], node_phi[j]) << "row " << i << " tree " << t;
    }
  }
  // The explainer facade (flat path) against the node-based ensemble
  // reference, plus local accuracy against the flat margin.
  TreeShapExplainer explainer(*gbdt, ds.schema());
  for (size_t i = 0; i < 40; ++i) {
    const std::vector<double> x = ds.row(i);
    auto attr = explainer.Explain(x);
    ASSERT_TRUE(attr.ok());
    const std::vector<double> reference =
        EnsembleTreeShap(gbdt->trees(), gbdt->learning_rate(), ds.d(), x);
    double sum = 0.0;
    for (size_t j = 0; j < ds.d(); ++j) {
      EXPECT_EQ(attr->values[j], reference[j]) << "row " << i;
      sum += attr->values[j];
    }
    EXPECT_NEAR(sum, gbdt->PredictMargin(x) - attr->base_value, 1e-9);
  }
}

TEST(FlatTree, ExplainBatchBitIdenticalAtEveryThreadCount) {
  Dataset ds = MakeLoanDataset(512);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 12});
  ASSERT_TRUE(gbdt.ok());
  TreeShapExplainer explainer(*gbdt, ds.schema());
  const size_t n = 256;
  Matrix rows(n, ds.d());
  for (size_t i = 0; i < n; ++i) rows.SetRow(i, ds.row(i));

  // Serial per-row reference.
  std::vector<std::vector<double>> serial(n);
  for (size_t i = 0; i < n; ++i) {
    auto attr = explainer.Explain(ds.row(i));
    ASSERT_TRUE(attr.ok());
    serial[i] = attr->values;
  }

  // The serving idiom: fixed row chunks dispatched over the global pool,
  // one ExplainBatch per chunk. Chunk boundaries depend only on n, so any
  // thread count must reproduce the serial doubles exactly.
  constexpr size_t kChunk = 64;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetGlobalThreads(threads);
    std::vector<std::vector<double>> parallel(n);
    const size_t num_chunks = (n + kChunk - 1) / kChunk;
    GlobalPool().ParallelFor(0, num_chunks, 1, [&](size_t c) {
      const size_t begin = c * kChunk;
      const size_t end = std::min(begin + kChunk, n);
      Matrix block(end - begin, ds.d());
      for (size_t i = begin; i < end; ++i) block.SetRow(i - begin, rows.Row(i));
      auto attrs = explainer.ExplainBatch(block);
      ASSERT_TRUE(attrs.ok());
      for (size_t i = begin; i < end; ++i)
        parallel[i] = (*attrs)[i - begin].values;
    });
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < ds.d(); ++j)
        EXPECT_EQ(parallel[i][j], serial[i][j])
            << "threads " << threads << " row " << i;
  }
  SetGlobalThreads(0);  // Restore env/hardware default.
}

TEST(FlatTree, SerializeLoadCompileRoundTrip) {
  Dataset ds = MakeLoanDataset(500);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 20});
  ASSERT_TRUE(gbdt.ok());
  const std::string path = "/tmp/xai_flat_roundtrip_gbdt.txt";
  ASSERT_TRUE(SaveModel(*gbdt, path).ok());
  auto loaded = LoadGbdt(path);
  ASSERT_TRUE(loaded.ok());
  // The loaded model recompiled its own FlatEnsemble; every flat
  // prediction and explanation must match the original's.
  EXPECT_EQ(loaded->flat().num_trees(), gbdt->flat().num_trees());
  EXPECT_EQ(loaded->flat().num_nodes(), gbdt->flat().num_nodes());
  const std::vector<double> a = gbdt->PredictMarginBatch(ds.x());
  const std::vector<double> b = loaded->PredictMarginBatch(ds.x());
  for (size_t i = 0; i < ds.n(); ++i) EXPECT_EQ(a[i], b[i]);
  TreeShapExplainer e1(*gbdt, ds.schema());
  TreeShapExplainer e2(*loaded, ds.schema());
  Matrix rows(30, ds.d());
  for (size_t i = 0; i < 30; ++i) rows.SetRow(i, ds.row(i));
  auto a1 = e1.ExplainBatch(rows);
  auto a2 = e2.ExplainBatch(rows);
  ASSERT_TRUE(a1.ok() && a2.ok());
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ((*a1)[i].base_value, (*a2)[i].base_value);
    EXPECT_EQ((*a1)[i].prediction, (*a2)[i].prediction);
    for (size_t j = 0; j < ds.d(); ++j)
      EXPECT_EQ((*a1)[i].values[j], (*a2)[i].values[j]);
  }
  std::remove(path.c_str());
}

TEST(FlatTree, ForestAndDtreeSerializationRoundTrip) {
  Dataset ds = MakeCreditDataset(300);
  auto forest = RandomForest::Fit(ds, {.num_trees = 10});
  ASSERT_TRUE(forest.ok());
  auto dtree = DecisionTree::Fit(ds);
  ASSERT_TRUE(dtree.ok());

  const std::string fpath = "/tmp/xai_flat_roundtrip_forest.txt";
  ASSERT_TRUE(SaveModel(*forest, fpath).ok());
  EXPECT_EQ(*PeekModelType(fpath), "forest");
  auto floaded = LoadRandomForest(fpath);
  ASSERT_TRUE(floaded.ok());
  const std::vector<double> fa = forest->PredictBatch(ds.x());
  const std::vector<double> fb = floaded->PredictBatch(ds.x());
  for (size_t i = 0; i < ds.n(); ++i) EXPECT_EQ(fa[i], fb[i]);

  const std::string dpath = "/tmp/xai_flat_roundtrip_dtree.txt";
  ASSERT_TRUE(SaveModel(*dtree, dpath).ok());
  EXPECT_EQ(*PeekModelType(dpath), "dtree");
  auto dloaded = LoadDecisionTree(dpath);
  ASSERT_TRUE(dloaded.ok());
  const std::vector<double> da = dtree->PredictBatch(ds.x());
  const std::vector<double> db = dloaded->PredictBatch(ds.x());
  for (size_t i = 0; i < ds.n(); ++i) EXPECT_EQ(da[i], db[i]);

  // Cross-type load is rejected.
  EXPECT_FALSE(LoadRandomForest(dpath).ok());
  EXPECT_FALSE(LoadDecisionTree(fpath).ok());
  std::remove(fpath.c_str());
  std::remove(dpath.c_str());
}

}  // namespace
}  // namespace xai
