// Property-based sweeps (TEST_P): invariants that must hold across broad
// parameter grids, complementing the example-based tests elsewhere.
#include <gtest/gtest.h>

#include <cmath>

#include "core/game.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "db/incremental.h"
#include "feature/kernel_shap.h"
#include "feature/shapley.h"
#include "feature/tree_shap.h"
#include "math/gaussian.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/linear_regression.h"
#include "model/logistic_regression.h"

namespace xai {
namespace {

// ---------------- TreeSHAP invariants across tree shapes ----------------

struct TreeShapParams {
  int max_depth;
  double rho;
  size_t dims;
  uint64_t seed;
};

class TreeShapProperty : public ::testing::TestWithParam<TreeShapParams> {};

TEST_P(TreeShapProperty, EfficiencyAndExactness) {
  const TreeShapParams p = GetParam();
  Dataset ds = MakeGaussianDataset(
      400, {.seed = p.seed, .dims = p.dims, .rho = p.rho});
  auto gbdt = GradientBoostedTrees::Fit(
      ds, {.num_rounds = 10,
           .tree = {.max_depth = p.max_depth, .min_samples_leaf = 5,
                    .max_features = 0}});
  ASSERT_TRUE(gbdt.ok());
  for (size_t i = 0; i < 3; ++i) {
    const std::vector<double> x = ds.row(i);
    std::vector<double> phi =
        EnsembleTreeShap(gbdt->trees(), gbdt->learning_rate(), p.dims, x);
    // Efficiency against the ensemble's own margin/base.
    double base = gbdt->base_score();
    for (const Tree& t : gbdt->trees())
      base += gbdt->learning_rate() * t.ExpectedValue();
    double sum = base;
    for (double v : phi) sum += v;
    EXPECT_NEAR(sum, gbdt->PredictMargin(x), 1e-8);
    // Exactness against subset enumeration.
    TreePathGame game(gbdt->trees(), gbdt->learning_rate(), p.dims, x);
    auto exact = ExactShapley(game);
    ASSERT_TRUE(exact.ok());
    for (size_t j = 0; j < p.dims; ++j)
      EXPECT_NEAR(phi[j], (*exact)[j], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthRhoSweep, TreeShapProperty,
    ::testing::Values(TreeShapParams{1, 0.0, 4, 1},
                      TreeShapParams{2, 0.0, 6, 2},
                      TreeShapParams{3, 0.5, 6, 3},
                      TreeShapParams{4, -0.4, 8, 4},
                      TreeShapParams{5, 0.7, 5, 5},
                      TreeShapParams{6, 0.2, 7, 6},
                      TreeShapParams{8, 0.0, 4, 7}));

TEST_P(TreeShapProperty, InterventionalMatchesCubeGameExactly) {
  const TreeShapParams p = GetParam();
  Dataset ds = MakeGaussianDataset(
      300, {.seed = p.seed + 100, .dims = p.dims, .rho = p.rho});
  auto tree = DecisionTree::Fit(
      ds, {.max_depth = p.max_depth, .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());
  const std::vector<double> x = ds.row(0);
  const std::vector<double> ref = ds.row(ds.n() - 1);
  std::vector<double> fast(p.dims, 0.0);
  InterventionalTreeShap(tree->tree(), x, ref, &fast);
  LambdaGame game(p.dims, [&](const std::vector<bool>& s) {
    std::vector<double> z(p.dims);
    for (size_t j = 0; j < p.dims; ++j) z[j] = s[j] ? x[j] : ref[j];
    return tree->tree().Predict(z);
  });
  auto exact = ExactShapley(game);
  ASSERT_TRUE(exact.ok());
  for (size_t j = 0; j < p.dims; ++j)
    EXPECT_NEAR(fast[j], (*exact)[j], 1e-10);
}

// ---------------- KernelSHAP == exact Shapley across d ----------------

class KernelShapProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelShapProperty, ExactEnumerationModeIsExact) {
  const size_t d = GetParam();
  Dataset ds = MakeGaussianDataset(200, {.seed = 10 + d, .dims = d});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  const std::vector<double> x = ds.row(0);
  KernelShapOptions opts;
  opts.max_background = 25;
  KernelShapExplainer ks(*model, ds, opts);
  auto attr = ks.Explain(x);
  ASSERT_TRUE(attr.ok());
  MarginalFeatureGame game(*model, ds.x(), x, 25);
  auto exact = ExactShapley(game);
  ASSERT_TRUE(exact.ok());
  for (size_t j = 0; j < d; ++j)
    EXPECT_NEAR(attr->values[j], (*exact)[j], 1e-6) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(DimsSweep, KernelShapProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12));

// ---------------- Shapley axioms on random games ----------------

class ShapleyAxiomsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShapleyAxiomsProperty, EfficiencyDummyAdditivity) {
  Rng rng(GetParam());
  const size_t n = 3 + GetParam() % 4;
  std::vector<double> table_a(1u << n);
  std::vector<double> table_b(1u << n);
  for (double& v : table_a) v = rng.Uniform(-1, 1);
  for (double& v : table_b) v = rng.Uniform(-1, 1);
  auto make_game = [n](const std::vector<double>& table) {
    return LambdaGame(n, [&table, n](const std::vector<bool>& s) {
      uint32_t m = 0;
      for (size_t i = 0; i < n; ++i)
        if (s[i]) m |= 1u << i;
      return table[m];
    });
  };
  LambdaGame ga = make_game(table_a);
  LambdaGame gb = make_game(table_b);
  auto phi_a = ExactShapley(ga);
  auto phi_b = ExactShapley(gb);
  ASSERT_TRUE(phi_a.ok() && phi_b.ok());

  // Efficiency.
  double sum = 0.0;
  for (double v : *phi_a) sum += v;
  EXPECT_NEAR(sum, table_a[(1u << n) - 1] - table_a[0], 1e-10);

  // Additivity: phi(a + b) = phi(a) + phi(b).
  LambdaGame gsum(n, [&](const std::vector<bool>& s) {
    return ga.Value(s) + gb.Value(s);
  });
  auto phi_sum = ExactShapley(gsum);
  ASSERT_TRUE(phi_sum.ok());
  for (size_t i = 0; i < n; ++i)
    EXPECT_NEAR((*phi_sum)[i], (*phi_a)[i] + (*phi_b)[i], 1e-10);

  // Dummy: append a player that never changes the value.
  LambdaGame gdummy(n + 1, [&](const std::vector<bool>& s) {
    std::vector<bool> inner(s.begin(), s.begin() + static_cast<long>(n));
    return ga.Value(inner);
  });
  auto phi_dummy = ExactShapley(gdummy);
  ASSERT_TRUE(phi_dummy.ok());
  EXPECT_NEAR((*phi_dummy)[n], 0.0, 1e-10);
  for (size_t i = 0; i < n; ++i)
    EXPECT_NEAR((*phi_dummy)[i], (*phi_a)[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, ShapleyAxiomsProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------- Incremental maintenance exactness ----------------

struct IncrementalParams {
  size_t n;
  size_t d;
  size_t k;
};

class IncrementalProperty
    : public ::testing::TestWithParam<IncrementalParams> {};

TEST_P(IncrementalProperty, DowndateEqualsRetrain) {
  const IncrementalParams p = GetParam();
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(p.n, p.d, 1000 + p.n, &w);
  auto inc = IncrementalLinearRegression::Fit(ds, {.lambda = 1e-5});
  ASSERT_TRUE(inc.ok());
  std::vector<size_t> removed;
  for (size_t i = 0; i < p.k; ++i) removed.push_back(i * 3);
  for (size_t i : removed)
    ASSERT_TRUE(inc->RemoveRow(ds.row(i), ds.y()[i]).ok());
  auto full = LinearRegression::Fit(ds.RemoveRows(removed), {.lambda = 1e-5});
  ASSERT_TRUE(full.ok());
  for (size_t j = 0; j < p.d; ++j)
    EXPECT_NEAR(inc->Theta()[j], full->weights()[j], 1e-6)
        << "n=" << p.n << " d=" << p.d << " k=" << p.k;
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, IncrementalProperty,
    ::testing::Values(IncrementalParams{50, 2, 1},
                      IncrementalParams{100, 4, 5},
                      IncrementalParams{200, 8, 20},
                      IncrementalParams{400, 3, 50},
                      IncrementalParams{300, 6, 99}));

// ---------------- Gaussian conditioning consistency ----------------

class GaussianConditionProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(GaussianConditionProperty, ConditionalMeanMatchesRegression) {
  const size_t d = GetParam();
  Dataset ds = MakeGaussianDataset(
      5000, {.seed = 77 + d, .dims = d, .rho = 0.6, .classification = false});
  auto g = MultivariateGaussian::Fit(ds.x());
  ASSERT_TRUE(g.ok());
  // Condition the last variable on the first d-1: the conditional mean
  // must match the linear regression of col d-1 on the others (Gaussian
  // conditional expectation IS the least-squares predictor).
  std::vector<size_t> given(d - 1);
  for (size_t j = 0; j + 1 < d; ++j) given[j] = j;
  std::vector<size_t> others(d - 1);
  for (size_t j = 0; j + 1 < d; ++j) others[j] = j;
  Matrix x_others = ds.x().SelectCols(others);
  std::vector<double> y_last = ds.x().Col(d - 1);
  auto reg = LinearRegression::Fit(x_others, y_last, {.lambda = 1e-9});
  ASSERT_TRUE(reg.ok());
  for (size_t trial = 0; trial < 5; ++trial) {
    std::vector<double> values(d - 1);
    for (size_t j = 0; j + 1 < d; ++j) values[j] = ds.x()(trial, j);
    auto cond = g->Condition(given, values);
    ASSERT_TRUE(cond.ok());
    EXPECT_NEAR(cond->mean()[0], reg->Predict(values), 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(DimsSweep, GaussianConditionProperty,
                         ::testing::Values(2, 3, 4, 6, 8));

// ---------------- CSV round trips over all generators ----------------

class CsvRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(CsvRoundTripProperty, LosslessForAllGenerators) {
  Dataset ds;
  switch (GetParam()) {
    case 0: ds = MakeLoanDataset(80); break;
    case 1: ds = MakeCreditDataset(80); break;
    case 2: ds = MakeHiringDataset(80); break;
    default: ds = MakeGaussianDataset(80, {.seed = 4, .dims = 5}); break;
  }
  const std::string path =
      "/tmp/xai_prop_roundtrip_" + std::to_string(GetParam()) + ".csv";
  ASSERT_TRUE(WriteCsv(ds, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->n(), ds.n());
  ASSERT_EQ(back->d(), ds.d());
  for (size_t i = 0; i < ds.n(); ++i) {
    for (size_t j = 0; j < ds.d(); ++j) {
      if (ds.schema().feature(j).is_numeric()) {
        EXPECT_NEAR(back->x()(i, j), ds.x()(i, j), 1e-6);
      } else {
        // Codes are assigned by first appearance on read; the *names*
        // must round-trip exactly.
        EXPECT_EQ(back->schema().FormatValue(j, back->x()(i, j)),
                  ds.schema().FormatValue(j, ds.x()(i, j)));
      }
    }
    EXPECT_DOUBLE_EQ(back->y()[i], ds.y()[i]);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(GeneratorSweep, CsvRoundTripProperty,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace xai
