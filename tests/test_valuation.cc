#include <gtest/gtest.h>

#include <cmath>

#include "core/game.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "feature/shapley.h"
#include "math/stats.h"
#include "model/knn.h"
#include "model/metrics.h"
#include "valuation/data_valuation.h"
#include "valuation/gbdt_influence.h"
#include "valuation/cooks_distance.h"
#include "valuation/influence.h"

namespace xai {
namespace {

/// Logistic-regression trainer/evaluator closed over a validation set.
TrainEvalFn LogisticTrainEval(const Dataset* validation) {
  return [validation](const Dataset& train) {
    if (train.n() < 5) return 0.5;
    auto m = LogisticRegression::Fit(train, {.lambda = 1e-2, .max_iter = 15});
    if (!m.ok()) return 0.5;
    return EvaluateAccuracy(*m, *validation);
  };
}

TEST(LeaveOneOut, DetectsAnOutlier) {
  // A blatantly mislabeled point far inside the other class hurts the
  // model; LOO value should be clearly negative for it.
  Dataset ds = MakeGaussianDataset(60, {.seed = 2, .dims = 2});
  Rng rng(4);
  std::vector<size_t> corrupted = InjectLabelNoise(&ds, 0.05, &rng);
  Rng vrng(5);
  Dataset validation = MakeGaussianDataset(300, {.seed = 99, .dims = 2});
  std::vector<double> values =
      LeaveOneOutValues(ds, LogisticTrainEval(&validation));
  ASSERT_EQ(values.size(), 60u);
  // Mean value of corrupted points < mean value of clean points.
  double vc = 0.0;
  double vk = 0.0;
  size_t nc = 0;
  std::vector<bool> is_corr(ds.n(), false);
  for (size_t i : corrupted) is_corr[i] = true;
  for (size_t i = 0; i < ds.n(); ++i) {
    if (is_corr[i]) {
      vc += values[i];
      ++nc;
    } else {
      vk += values[i];
    }
  }
  ASSERT_GT(nc, 0u);
  EXPECT_LT(vc / nc, vk / (ds.n() - nc));
}

TEST(TmcDataShapley, RanksCorruptedPointsLow) {
  Dataset train = MakeGaussianDataset(80, {.seed = 11, .dims = 3});
  Dataset validation = MakeGaussianDataset(400, {.seed = 12, .dims = 3});
  Rng rng(13);
  std::vector<size_t> corrupted = InjectLabelNoise(&train, 0.2, &rng);
  std::vector<double> values = TmcDataShapley(
      train, LogisticTrainEval(&validation),
      {.num_permutations = 25, .truncation_tol = 0.002, .seed = 21});
  const double detection =
      CorruptionDetectionRate(values, corrupted, corrupted.size() * 2);
  // Inspecting the bottom 2f points should find well over the random
  // baseline (~2f * f / n = 0.4 of the corrupted set at f=0.2).
  EXPECT_GT(detection, 0.55);
}

TEST(TmcDataShapley, EfficiencyApproximatelyHolds) {
  // Sum of values ~ perf(full) - perf(empty).
  Dataset train = MakeGaussianDataset(40, {.seed = 31, .dims = 2});
  Dataset validation = MakeGaussianDataset(400, {.seed = 32, .dims = 2});
  TrainEvalFn te = LogisticTrainEval(&validation);
  std::vector<double> values = TmcDataShapley(
      train, te, {.num_permutations = 60, .truncation_tol = 0.0});
  double sum = 0.0;
  for (double v : values) sum += v;
  EXPECT_NEAR(sum, te(train) - 0.5, 0.02);
}

TEST(KnnShapley, MatchesMonteCarloShapleyOnTinyProblem) {
  // Exact recurrence vs brute-force Shapley of the KNN utility game.
  const int k = 3;
  Dataset train = MakeGaussianDataset(10, {.seed = 41, .dims = 2});
  Dataset validation = MakeGaussianDataset(40, {.seed = 42, .dims = 2});
  std::vector<double> exact = ExactKnnShapley(train, validation, k);

  // The utility the Jia et al. recurrence targets:
  //   v(S) = mean over validation points of
  //          (1/K) * #matching labels among the min(K, |S|) nearest
  //          coalition members. Empty coalition scores 0.
  LambdaGame game(train.n(), [&](const std::vector<bool>& s) {
    std::vector<size_t> keep;
    for (size_t i = 0; i < train.n(); ++i)
      if (s[i]) keep.push_back(i);
    if (keep.empty()) return 0.0;
    double total = 0.0;
    for (size_t v = 0; v < validation.n(); ++v) {
      const std::vector<double> xv = validation.row(v);
      std::vector<std::pair<double, size_t>> dist;
      for (size_t i : keep) {
        double d2 = 0.0;
        for (size_t j = 0; j < train.d(); ++j) {
          const double dd = train.x()(i, j) - xv[j];
          d2 += dd * dd;
        }
        dist.emplace_back(d2, i);
      }
      std::sort(dist.begin(), dist.end());
      const size_t kk = std::min<size_t>(static_cast<size_t>(k),
                                         dist.size());
      double matches = 0.0;
      for (size_t r = 0; r < kk; ++r) {
        if ((train.y()[dist[r].second] >= 0.5) ==
            (validation.y()[v] >= 0.5))
          matches += 1.0;
      }
      total += matches / static_cast<double>(k);
    }
    return total / static_cast<double>(validation.n());
  });
  auto brute = ExactShapley(game, 12);
  ASSERT_TRUE(brute.ok());
  for (size_t i = 0; i < train.n(); ++i)
    EXPECT_NEAR(exact[i], (*brute)[i], 1e-9) << "point " << i;
}

TEST(KnnShapley, DetectsCorruptedLabels) {
  Dataset train = MakeGaussianDataset(300, {.seed = 51, .dims = 3});
  Dataset validation = MakeGaussianDataset(300, {.seed = 52, .dims = 3});
  Rng rng(53);
  std::vector<size_t> corrupted = InjectLabelNoise(&train, 0.15, &rng);
  std::vector<double> values = ExactKnnShapley(train, validation, 5);
  const double detection =
      CorruptionDetectionRate(values, corrupted, corrupted.size() * 2);
  EXPECT_GT(detection, 0.6);
}

TEST(Influence, MatchesLeaveOneOutRetraining) {
  // The headline Koh & Liang result: first-order influence correlates
  // strongly with the actual retraining delta.
  Dataset train = MakeGaussianDataset(120, {.seed = 61, .dims = 3});
  Dataset validation = MakeGaussianDataset(400, {.seed = 62, .dims = 3});
  LogisticRegression::Options mopts{.lambda = 0.05, .max_iter = 60,
                                    .tol = 1e-12};
  auto model = LogisticRegression::Fit(train, mopts);
  ASSERT_TRUE(model.ok());
  auto calc = InfluenceCalculator::Create(*model, train);
  ASSERT_TRUE(calc.ok());
  std::vector<double> predicted = calc->InfluenceOnValidationLoss(validation);

  // Ground truth by retraining.
  std::vector<double> actual(train.n());
  auto val_loss = [&](const LogisticRegression& m) {
    return LogLoss(m.PredictBatch(validation.x()), validation.y());
  };
  const double base_loss = val_loss(*model);
  for (size_t i = 0; i < train.n(); ++i) {
    auto retrained = LogisticRegression::Fit(train.RemoveRow(i), mopts);
    ASSERT_TRUE(retrained.ok());
    actual[i] = val_loss(*retrained) - base_loss;
  }
  EXPECT_GT(PearsonCorrelation(predicted, actual), 0.95);
}

TEST(Influence, CgMatchesCholesky) {
  Dataset train = MakeGaussianDataset(150, {.seed = 71, .dims = 4});
  Dataset validation = MakeGaussianDataset(150, {.seed = 72, .dims = 4});
  auto model = LogisticRegression::Fit(train, {.lambda = 0.02});
  ASSERT_TRUE(model.ok());
  auto chol = InfluenceCalculator::Create(
      *model, train, {.solver = HessianSolver::kCholesky});
  auto cg = InfluenceCalculator::Create(
      *model, train, {.solver = HessianSolver::kConjugateGradient});
  ASSERT_TRUE(chol.ok() && cg.ok());
  auto a = chol->InfluenceOnValidationLoss(validation);
  auto b = cg->InfluenceOnValidationLoss(validation);
  for (size_t i = 0; i < train.n(); ++i) EXPECT_NEAR(a[i], b[i], 1e-8);
}

TEST(GroupInfluence, SecondOrderBeatsFirstOrderForLargeGroups) {
  Dataset train = MakeGaussianDataset(250, {.seed = 81, .dims = 3});
  LogisticRegression::Options mopts{.lambda = 0.05, .max_iter = 60,
                                    .tol = 1e-12};
  auto model = LogisticRegression::Fit(train, mopts);
  ASSERT_TRUE(model.ok());
  auto calc = InfluenceCalculator::Create(*model, train);
  ASSERT_TRUE(calc.ok());

  // Remove a correlated group: the 20% of points with largest x0 (their
  // gradients point the same way, which breaks first-order additivity).
  std::vector<size_t> order(train.n());
  for (size_t i = 0; i < train.n(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return train.x()(a, 0) > train.x()(b, 0);
  });
  std::vector<size_t> group(order.begin(), order.begin() + 50);

  auto exact = calc->GroupParamChangeRetrain(group);
  ASSERT_TRUE(exact.ok());
  std::vector<double> first = calc->GroupParamChangeFirstOrder(group);
  auto second = calc->GroupParamChangeSecondOrder(group);
  ASSERT_TRUE(second.ok());

  double err1 = 0.0;
  double err2 = 0.0;
  for (size_t a = 0; a < exact->size(); ++a) {
    err1 += std::pow((*exact)[a] - first[a], 2);
    err2 += std::pow((*exact)[a] - (*second)[a], 2);
  }
  EXPECT_LT(err2, err1);
  // Second order should be very close to the exact change.
  EXPECT_LT(std::sqrt(err2), 0.35 * std::sqrt(err1) + 1e-4);
}

TEST(GbdtInfluence, LeafRefitMatchesManualLeafRecomputation) {
  Dataset train = MakeGaussianDataset(200, {.seed = 91, .dims = 3});
  auto gbdt = GradientBoostedTrees::Fit(
      train, {.loss = GbdtLoss::kSquared, .num_rounds = 1,
              .learning_rate = 1.0});
  ASSERT_TRUE(gbdt.ok());
  auto infl = GbdtLeafInfluence::Create(*gbdt, train);
  ASSERT_TRUE(infl.ok());

  // With a single squared-loss tree and lr=1, removing point i changes
  // the prediction at its own leaf from mean(residuals) to the mean
  // without it; verify against direct recomputation.
  const Tree& tree = gbdt->trees()[0];
  const std::vector<double> x = train.row(7);
  const int leaf = tree.LeafIndex(x);
  std::vector<double> deltas = infl->InfluenceOnPrediction(x);
  // Manual: residuals at round 0 are y - mean(y).
  double base = 0.0;
  for (double y : train.y()) base += y / static_cast<double>(train.n());
  std::vector<double> members;
  for (size_t i = 0; i < train.n(); ++i)
    if (tree.LeafIndex(train.row(i)) == leaf)
      members.push_back(train.y()[i] - base);
  const double leaf_value = Mean(members);
  for (size_t i = 0; i < train.n(); ++i) {
    if (tree.LeafIndex(train.row(i)) != leaf) {
      EXPECT_DOUBLE_EQ(deltas[i], 0.0);
      continue;
    }
    // Recompute mean without i's residual.
    const double ri = train.y()[i] - base;
    const double m = static_cast<double>(members.size());
    const double new_value = (leaf_value * m - ri) / (m - 1.0);
    EXPECT_NEAR(deltas[i], new_value - leaf_value, 1e-9);
  }
}

TEST(GbdtInfluence, CorrelatesWithActualRemoval) {
  // LeafRefit models the *margin* change under fixed structure; compare
  // against actual retraining margin deltas on test points.
  Dataset train = MakeGaussianDataset(120, {.seed = 95, .dims = 3});
  Dataset test = MakeGaussianDataset(30, {.seed = 96, .dims = 3});
  GbdtOptions gopts{.num_rounds = 6, .learning_rate = 0.5};
  auto gbdt = GradientBoostedTrees::Fit(train, gopts);
  ASSERT_TRUE(gbdt.ok());
  auto infl = GbdtLeafInfluence::Create(*gbdt, train);
  ASSERT_TRUE(infl.ok());

  // Aggregate predicted margin change over the test points, per train row.
  std::vector<double> predicted(train.n(), 0.0);
  for (size_t v = 0; v < test.n(); ++v) {
    std::vector<double> dm = infl->InfluenceOnPrediction(test.row(v));
    for (size_t i = 0; i < train.n(); ++i) predicted[i] += dm[i];
  }
  // Ground truth: exact LeafRefit — keep every tree's structure frozen
  // but replay boosting without point i, so leaf values *and* residual
  // drift are exact. The unit under test ignores drift only.
  auto exact_leaf_refit_margin = [&](size_t skip,
                                     const std::vector<double>& x) {
    const size_t n = train.n();
    std::vector<double> margin(n, gbdt->base_score());
    double test_margin = gbdt->base_score();
    for (const Tree& tree : gbdt->trees()) {
      std::vector<double> leaf_g(tree.nodes.size(), 0.0);
      std::vector<double> leaf_h(tree.nodes.size(), 0.0);
      std::vector<int> leaf_of(n);
      for (size_t i = 0; i < n; ++i) {
        if (i == skip) continue;
        const std::vector<double> xi = train.row(i);
        const double p = Sigmoid(margin[i]);
        const double g = train.y()[i] - p;
        const double h = std::max(p * (1.0 - p), 1e-6);
        const int leaf = tree.LeafIndex(xi);
        leaf_of[i] = leaf;
        leaf_g[static_cast<size_t>(leaf)] += g;
        leaf_h[static_cast<size_t>(leaf)] += h;
      }
      auto value_of = [&](int leaf) {
        const double h = leaf_h[static_cast<size_t>(leaf)];
        return h > 1e-12 ? leaf_g[static_cast<size_t>(leaf)] / h : 0.0;
      };
      for (size_t i = 0; i < n; ++i) {
        if (i == skip) continue;
        margin[i] += gbdt->learning_rate() * value_of(leaf_of[i]);
      }
      test_margin += gbdt->learning_rate() * value_of(tree.LeafIndex(x));
    }
    return test_margin;
  };

  std::vector<double> actual;
  std::vector<double> pred_sub;
  std::vector<double> base_margin(test.n());
  for (size_t v = 0; v < test.n(); ++v)
    base_margin[v] = gbdt->PredictMargin(test.row(v));
  for (size_t i = 0; i < train.n(); i += 3) {
    double delta = 0.0;
    for (size_t v = 0; v < test.n(); ++v)
      delta += exact_leaf_refit_margin(i, test.row(v)) - base_margin[v];
    actual.push_back(delta);
    pred_sub.push_back(predicted[i]);
  }
  // Only residual drift is ignored by the fast path: high agreement.
  EXPECT_GT(SpearmanCorrelation(pred_sub, actual), 0.8);
}

TEST(CooksDistance, ExactParamChangeMatchesRetraining) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(120, 4, 101, &w);
  auto model = LinearRegression::Fit(ds, {.lambda = 1e-10});
  ASSERT_TRUE(model.ok());
  auto report = ComputeCooksDistance(*model, ds);
  ASSERT_TRUE(report.ok());
  for (size_t i = 0; i < 10; ++i) {
    auto retrained = LinearRegression::Fit(ds.RemoveRow(i), {.lambda = 1e-10});
    ASSERT_TRUE(retrained.ok());
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(report->param_change[i][j],
                  retrained->weights()[j] - model->weights()[j], 1e-6)
          << "point " << i << " weight " << j;
    }
    EXPECT_NEAR(report->param_change[i][4],
                retrained->intercept() - model->intercept(), 1e-6);
  }
  // Leverage is in (0, 1) and sums to the parameter count.
  double h_sum = 0.0;
  for (double h : report->leverage) {
    EXPECT_GT(h, 0.0);
    EXPECT_LT(h, 1.0);
    h_sum += h;
  }
  EXPECT_NEAR(h_sum, 5.0, 1e-6);  // d + 1 parameters.
}

TEST(CooksDistance, FlagsInjectedOutlier) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(150, 3, 103, &w);
  // Corrupt one response massively.
  ds.mutable_y()[42] += 50.0;
  auto model = LinearRegression::Fit(ds, {.lambda = 1e-10});
  ASSERT_TRUE(model.ok());
  auto report = ComputeCooksDistance(*model, ds);
  ASSERT_TRUE(report.ok());
  size_t argmax = 0;
  for (size_t i = 1; i < ds.n(); ++i)
    if (report->cooks_distance[i] > report->cooks_distance[argmax])
      argmax = i;
  EXPECT_EQ(argmax, 42u);
  EXPECT_FALSE(
      ComputeCooksDistance(*model, ds.Select({0, 1, 2})).ok());  // n <= d+1.
}

TEST(CorruptionDetection, RateSemantics) {
  std::vector<double> values = {0.5, -1.0, 0.3, -2.0, 0.9};
  std::vector<size_t> corrupted = {1, 3};
  EXPECT_DOUBLE_EQ(CorruptionDetectionRate(values, corrupted, 2), 1.0);
  EXPECT_DOUBLE_EQ(CorruptionDetectionRate(values, corrupted, 1), 0.5);
  EXPECT_DOUBLE_EQ(CorruptionDetectionRate(values, {}, 2), 0.0);
}

}  // namespace
}  // namespace xai
