#include <gtest/gtest.h>

#include <cmath>

#include "feature/integrated_gradients.h"
#include "image/evidence_counterfactual.h"
#include "image/grid_image.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"

namespace xai {
namespace {

TEST(GridImage, AccessAndAscii) {
  GridImage img;
  img.width = 3;
  img.height = 2;
  img.pixels = {0.0, 0.9, 0.3, 0.6, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(img.at(0, 1), 0.9);
  img.at(1, 1) = 0.5;
  EXPECT_DOUBLE_EQ(img.pixels[4], 0.5);
  const std::string art = img.ToAscii();
  EXPECT_EQ(art, " #.\noo#\n");
}

TEST(ShapeImages, CorpusIsLearnable) {
  ShapeImageCorpus corpus = MakeShapeImages(1200);
  Dataset ds = ToPixelDataset(corpus);
  EXPECT_EQ(ds.d(), 64u);
  Rng rng(1);
  auto [train, test] = ds.Split(0.8, &rng);
  auto model = LogisticRegression::Fit(train, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateAccuracy(*model, test), 0.9);
}

TEST(Saliency, HighlightsTheBar) {
  ShapeImageCorpus corpus = MakeShapeImages(1200);
  Dataset ds = ToPixelDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());
  IntegratedGradientsExplainer ig(*model, ds, {}, {.steps = 32});

  // A clean vertical-bar image at column 3.
  GridImage img;
  img.width = 8;
  img.height = 8;
  img.pixels.assign(64, 0.0);
  for (size_t r = 0; r < 8; ++r) img.at(r, 3) = 1.0;
  auto attr = ig.Explain(img.pixels);
  ASSERT_TRUE(attr.ok());
  // Mean |attribution| on the bar pixels dwarfs the off-bar mean.
  double on_bar = 0.0;
  double off_bar = 0.0;
  for (size_t r = 0; r < 8; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      const double a = std::fabs(attr->values[r * 8 + c]);
      if (c == 3) {
        on_bar += a / 8.0;
      } else {
        off_bar += a / 56.0;
      }
    }
  }
  EXPECT_GT(on_bar, 3.0 * off_bar);
}

TEST(EvidenceCounterfactual, ErasingTheBarFlipsTheClass) {
  ShapeImageCorpus corpus = MakeShapeImages(1200);
  Dataset ds = ToPixelDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());

  // Clean vertical bar at column 5: positive class.
  GridImage img;
  img.width = 8;
  img.height = 8;
  img.pixels.assign(64, 0.0);
  for (size_t r = 0; r < 8; ++r) img.at(r, 5) = 1.0;
  ASSERT_GE(model->Predict(img.pixels), 0.5);

  auto region = FindEvidenceCounterfactual(*model, img, {.tile_size = 2});
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->flipped);
  EXPECT_LT(region->counterfactual_prediction, 0.5);
  EXPECT_FALSE(region->tiles.empty());
  // The (subset-minimal, possibly single-tile) region must overlap the
  // bar column — erasing background alone cannot flip a bar detector.
  size_t on_bar_pixels = 0;
  for (size_t r = 0; r < 8; ++r)
    if (region->pixel_mask[r * 8 + 5]) ++on_bar_pixels;
  EXPECT_GE(on_bar_pixels, 1u);
}

TEST(EvidenceCounterfactual, RegionIsSubsetMinimal) {
  ShapeImageCorpus corpus = MakeShapeImages(1000);
  Dataset ds = ToPixelDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());
  // Explain an actual corpus image that is confidently classified.
  size_t who = corpus.images.size();
  for (size_t i = 0; i < corpus.images.size(); ++i) {
    const double p = model->Predict(corpus.images[i].pixels);
    if (p > 0.85) {
      who = i;
      break;
    }
  }
  ASSERT_LT(who, corpus.images.size());
  const GridImage& img = corpus.images[who];
  auto region = FindEvidenceCounterfactual(*model, img, {.tile_size = 2});
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(region->flipped);

  // Minimality: restoring any single chosen tile un-flips the decision.
  EvidenceCounterfactualOptions opts;
  const size_t tiles_per_row = 4;  // 8 / 2.
  for (size_t t : region->tiles) {
    std::vector<double> probe = img.pixels;
    // Erase all region tiles except t.
    for (size_t other : region->tiles) {
      if (other == t) continue;
      const size_t tr = other / tiles_per_row;
      const size_t tc = other % tiles_per_row;
      for (size_t r = tr * 2; r < tr * 2 + 2; ++r)
        for (size_t c = tc * 2; c < tc * 2 + 2; ++c)
          probe[r * 8 + c] = 0.0;
    }
    const double pred = model->Predict(probe);
    const bool still_flipped = region->original_prediction >= 0.5
                                   ? pred < 0.5
                                   : pred >= 0.5;
    EXPECT_FALSE(still_flipped)
        << "tile " << t << " was unnecessary: region not minimal";
  }
}

TEST(RenderSignedMap, BucketsSigns) {
  std::vector<double> v = {1.0, -1.0, 0.0, 0.4};
  const std::string art = RenderSignedMap(v, 2, 2);
  EXPECT_EQ(art, "#=\n.+\n");
}

}  // namespace
}  // namespace xai
