// Tests for the versioned model registry and the zero-downtime hot-swap:
// byte-stable artifact round-trips for every model kind through the
// polymorphic SaveModel/LoadAnyModel API, manifest error handling
// (missing files, version collisions, kind/fingerprint mismatches),
// refcounted handles outliving the registry, and swap-under-concurrent-
// load with bit-identical attributions per version (the `registry` ctest
// label is part of the TSan job — budgets are deliberately small).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "feature/explainer_factory.h"
#include "model/knn.h"
#include "model/naive_bayes.h"
#include "model/registry.h"
#include "model/serialize.h"
#include "serve/service.h"

namespace xai {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Fresh per-test scratch directory.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "xai_registry_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A tiny non-negative-count dataset for the naive Bayes fits.
Dataset MakeCountDataset() {
  Schema schema({FeatureSpec::Numeric("a"), FeatureSpec::Numeric("b"),
                 FeatureSpec::Numeric("c")});
  Matrix x(8, 3);
  std::vector<double> y(8);
  for (size_t i = 0; i < 8; ++i) {
    y[i] = i % 2 ? 1.0 : 0.0;
    x(i, 0) = static_cast<double>(i % 3);
    x(i, 1) = static_cast<double>((i * 2) % 5);
    x(i, 2) = y[i] > 0.5 ? 3.0 : 1.0;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

// ---------------------------------------------------------------------------
// Polymorphic artifact API: save -> load -> save is byte-stable for every
// model kind, and LoadAnyModel recovers the exact concrete type.

TEST(Artifact, ByteStableRoundTripEveryKind) {
  const std::string dir = ScratchDir("bytestable");
  Dataset loan = MakeLoanDataset(120, {.seed = 7});
  Dataset counts = MakeCountDataset();

  std::vector<std::pair<std::string, std::unique_ptr<Model>>> models;
  {
    auto m = GradientBoostedTrees::Fit(loan, {.num_rounds = 5});
    ASSERT_TRUE(m.ok());
    models.emplace_back("gbdt", std::make_unique<GradientBoostedTrees>(
                                    std::move(*m)));
  }
  {
    auto m = DecisionTree::Fit(loan, {.max_depth = 4});
    ASSERT_TRUE(m.ok());
    models.emplace_back("dtree",
                        std::make_unique<DecisionTree>(std::move(*m)));
  }
  {
    auto m = RandomForest::Fit(loan, {.num_trees = 4});
    ASSERT_TRUE(m.ok());
    models.emplace_back("forest",
                        std::make_unique<RandomForest>(std::move(*m)));
  }
  {
    std::vector<double> w;
    Dataset lin = MakeLinearRegressionDataset(80, 4, 3, &w);
    auto m = LinearRegression::Fit(lin);
    ASSERT_TRUE(m.ok());
    models.emplace_back("linear",
                        std::make_unique<LinearRegression>(std::move(*m)));
  }
  {
    auto m = LogisticRegression::Fit(loan, {.lambda = 0.01});
    ASSERT_TRUE(m.ok());
    models.emplace_back("logistic", std::make_unique<LogisticRegression>(
                                        std::move(*m)));
  }
  {
    auto m = KnnClassifier::Fit(loan, 3);
    ASSERT_TRUE(m.ok());
    models.emplace_back("knn",
                        std::make_unique<KnnClassifier>(std::move(*m)));
  }
  {
    auto m = MultinomialNaiveBayes::Fit(counts);
    ASSERT_TRUE(m.ok());
    models.emplace_back(
        "nbayes", std::make_unique<MultinomialNaiveBayes>(std::move(*m)));
  }

  for (auto& [kind, model] : models) {
    SCOPED_TRACE(kind);
    ASSERT_EQ(*ModelKindOf(*model), kind);
    const std::string p1 = dir + "/" + kind + ".1.model";
    const std::string p2 = dir + "/" + kind + ".2.model";
    ASSERT_TRUE(SaveModel(*model, p1).ok());
    EXPECT_EQ(*PeekModelType(p1), kind);
    auto loaded = LoadAnyModel(p1);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_TRUE(SaveModel(**loaded, p2).ok());
    // Full-precision text + deterministic field order = identical bytes.
    EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
    // And the reload predicts bit-identically.
    const Dataset& ds = kind == "nbayes" ? counts : loan;
    for (size_t i = 0; i < 5 && i < ds.n(); ++i) {
      std::vector<double> row = ds.row(i);
      row.resize((*loaded)->num_features() != 0 ? (*loaded)->num_features()
                                                : row.size());
      EXPECT_EQ((*loaded)->Predict(row), model->Predict(row));
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(Artifact, AdhocModelsHaveNoArtifactForm) {
  auto lambda = MakeLambdaModel(3, [](const std::vector<double>&) {
    return 0.5;
  });
  EXPECT_FALSE(ModelKindOf(lambda).ok());
  Status st = SaveModel(lambda, ::testing::TempDir() + "lambda.model");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(Artifact, KnnRoundTripKeepsSchemaAndValuation) {
  const std::string dir = ScratchDir("knnschema");
  Dataset loan = MakeLoanDataset(60, {.seed = 3});
  auto m = KnnClassifier::Fit(loan, 5);
  ASSERT_TRUE(m.ok());
  const std::string path = dir + "/knn.model";
  ASSERT_TRUE(SaveModel(*m, path).ok());
  auto loaded = LoadKnn(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->k(), m->k());
  ASSERT_EQ(loaded->train().n(), m->train().n());
  ASSERT_EQ(loaded->train().schema().num_features(),
            m->train().schema().num_features());
  for (size_t j = 0; j < loan.schema().num_features(); ++j) {
    const FeatureSpec& a = m->train().schema().feature(j);
    const FeatureSpec& b = loaded->train().schema().feature(j);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.is_numeric(), b.is_numeric());
    EXPECT_EQ(a.categories, b.categories);
  }
  // The KNN-Shapley recurrence runs off the stored training set: the
  // neighbor ordering (its input) must survive the round-trip exactly.
  EXPECT_EQ(loaded->NeighborsByDistance(loan.row(0)),
            m->NeighborsByDistance(loan.row(0)));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Registry: versioning, persistence across reopen, and manifest errors.

TEST(Registry, AddGetResolveServingRoundTrip) {
  const std::string dir = ScratchDir("roundtrip");
  Dataset loan = MakeLoanDataset(100, {.seed = 5});
  auto reg = ModelRegistry::OpenOrCreate(dir);
  ASSERT_TRUE(reg.ok());

  auto m1 = GradientBoostedTrees::Fit(loan, {.num_rounds = 3});
  auto m2 = GradientBoostedTrees::Fit(loan, {.num_rounds = 6});
  ASSERT_TRUE(m1.ok() && m2.ok());
  auto a1 = reg->Add(*m1, "gbdt");
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->version, 1);
  EXPECT_EQ(a1->kind, "gbdt");
  auto a2 = reg->Add(*m2, "gbdt");
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->version, 2);
  EXPECT_EQ(reg->LatestVersion("gbdt"), 2);

  // Serving defaults to the first registered version until flipped.
  auto serving = reg->Serving("gbdt");
  ASSERT_TRUE(serving.ok());
  EXPECT_EQ(serving->version(), 1);
  ASSERT_TRUE(reg->SetServing("gbdt", 2).ok());
  EXPECT_EQ(reg->Serving("gbdt")->version(), 2);

  // Resolve: bare name -> serving; name@version -> that version.
  EXPECT_EQ(reg->Resolve("gbdt")->version(), 2);
  EXPECT_EQ(reg->Resolve("gbdt@1")->version(), 1);
  EXPECT_FALSE(reg->Resolve("gbdt@9").ok());
  EXPECT_FALSE(reg->Resolve("gbdt@x").ok());
  EXPECT_FALSE(reg->Resolve("nope").ok());

  // Handles to the same version share one loaded instance.
  auto h1 = reg->Get("gbdt", 1);
  auto h1b = reg->Get("gbdt", 1);
  ASSERT_TRUE(h1.ok() && h1b.ok());
  EXPECT_EQ(h1->get(), h1b->get());
  EXPECT_EQ(h1->fingerprint(), h1b->fingerprint());
  EXPECT_NE(h1->fingerprint(), reg->Get("gbdt", 2)->fingerprint());
  EXPECT_EQ(h1->VersionedName(), "gbdt@1");

  // Reopen from disk: same artifacts, same serving version, and the
  // loaded model predicts bit-identically to the pre-reopen handle.
  auto reopened = ModelRegistry::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->List().size(), 2u);
  EXPECT_EQ(reopened->Serving("gbdt")->version(), 2);
  auto h1r = reopened->Get("gbdt", 1);
  ASSERT_TRUE(h1r.ok());
  for (size_t i = 0; i < 5; ++i)
    EXPECT_EQ(h1r->model().Predict(loan.row(i)),
              h1->model().Predict(loan.row(i)));
  std::filesystem::remove_all(dir);
}

TEST(Registry, HandleKeepsModelAliveAfterRegistryIsGone) {
  const std::string dir = ScratchDir("alive");
  Dataset loan = MakeLoanDataset(80, {.seed = 9});
  ModelHandle handle;
  {
    auto reg = ModelRegistry::OpenOrCreate(dir);
    ASSERT_TRUE(reg.ok());
    auto m = LogisticRegression::Fit(loan, {});
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(reg->Add(*m, "logit").ok());
    auto h = reg->Get("logit", 1);
    ASSERT_TRUE(h.ok());
    handle = std::move(h).value();
  }  // registry destroyed
  EXPECT_TRUE(handle.valid());
  EXPECT_GT(handle.model().Predict(loan.row(0)), 0.0);
  std::filesystem::remove_all(dir);
}

TEST(Registry, ManifestErrors) {
  const std::string dir = ScratchDir("manifest");
  Dataset loan = MakeLoanDataset(80, {.seed = 2});
  {
    auto reg = ModelRegistry::OpenOrCreate(dir);
    ASSERT_TRUE(reg.ok());
    auto m = DecisionTree::Fit(loan, {.max_depth = 3});
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(reg->Add(*m, "tree").ok());
  }
  const std::string manifest = dir + "/MANIFEST";
  const std::string good = ReadFileBytes(manifest);

  auto rewrite = [&](const std::string& contents) {
    std::ofstream out(manifest);
    out << contents;
  };

  // Open on a non-directory fails cleanly.
  EXPECT_FALSE(ModelRegistry::Open(dir + "/nope").ok());

  // Missing artifact file.
  rewrite("xaidb_registry v1\nmodel tree 1 dtree abc missing.model\n");
  EXPECT_EQ(ModelRegistry::Open(dir).status().code(), StatusCode::kIOError);

  // Version collision: the same name@version listed twice.
  rewrite("xaidb_registry v1\nmodel tree 1 dtree abc tree.v1.model\n" +
          std::string("model tree 1 dtree abc tree.v1.model\n"));
  EXPECT_EQ(ModelRegistry::Open(dir).status().code(),
            StatusCode::kInvalidArgument);

  // Serving line pointing at an unknown version.
  rewrite("xaidb_registry v1\nserving tree 3\n");
  EXPECT_FALSE(ModelRegistry::Open(dir).ok());

  // Bad magic and unknown tags.
  rewrite("not a registry\n");
  EXPECT_FALSE(ModelRegistry::Open(dir).ok());
  rewrite("xaidb_registry v1\nfrobnicate\n");
  EXPECT_FALSE(ModelRegistry::Open(dir).ok());

  // Kind mismatch: manifest says gbdt, file header says dtree.
  rewrite(good);
  {
    auto reg = ModelRegistry::Open(dir);
    ASSERT_TRUE(reg.ok());
    std::string tampered = good;
    const size_t pos = tampered.find(" dtree ");
    ASSERT_NE(pos, std::string::npos);
    tampered.replace(pos, 7, " gbdt ");
    rewrite(tampered);
    auto reg2 = ModelRegistry::Open(dir);
    ASSERT_TRUE(reg2.ok());  // detected lazily, at load time
    auto h = reg2->Get("tree", 1);
    ASSERT_FALSE(h.ok());
    EXPECT_EQ(h.status().code(), StatusCode::kInvalidArgument);
  }

  // Fingerprint mismatch: artifact bytes changed after registration.
  rewrite(good);
  {
    std::ofstream out(dir + "/tree.v1.model", std::ios::app);
    out << "tampered\n";
  }
  auto reg = ModelRegistry::Open(dir);
  ASSERT_TRUE(reg.ok());
  auto h = reg->Get("tree", 1);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Coalescing-key contract: the model fingerprint is part of the config
// fingerprint, so two versions can never share a key.

TEST(Registry, ConfigFingerprintSeparatesModelVersions) {
  ExplainerConfig a;
  ExplainerConfig b;
  a.model_fingerprint = 0x1111;
  b.model_fingerprint = 0x2222;
  for (ExplainerKind kind :
       {ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
        ExplainerKind::kLime, ExplainerKind::kMcShapley}) {
    EXPECT_NE(a.Fingerprint(kind), b.Fingerprint(kind));
    b.model_fingerprint = a.model_fingerprint;
    EXPECT_EQ(a.Fingerprint(kind), b.Fingerprint(kind));
    b.model_fingerprint = 0x2222;
  }
}

// ---------------------------------------------------------------------------
// Hot-swap through the service.

class SwapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(MakeLoanDataset(200, {.seed = 11}));
    auto m1 = GradientBoostedTrees::Fit(*ds_, {.num_rounds = 4});
    auto m2 = GradientBoostedTrees::Fit(*ds_, {.num_rounds = 8});
    ASSERT_TRUE(m1.ok() && m2.ok());
    v1_ = new GradientBoostedTrees(std::move(*m1));
    v2_ = new GradientBoostedTrees(std::move(*m2));
  }
  static void TearDownTestSuite() {
    delete v1_;
    delete v2_;
    delete ds_;
    v1_ = nullptr;
    v2_ = nullptr;
    ds_ = nullptr;
  }

  static ExplainerConfig FastConfig() {
    ExplainerConfig config;
    config.kernel_shap.max_background = 8;
    config.kernel_shap.num_samples = 64;
    return config;
  }

  /// Solo reference attribution for `row` under `model`, bit-identical to
  /// what the service must return for that version.
  static FeatureAttribution Solo(const GradientBoostedTrees& model,
                                 ExplainerKind kind, size_t row) {
    auto ex = MakeExplainer(kind, ModelHandle::Borrow(model), *ds_,
                            FastConfig());
    EXPECT_TRUE(ex.ok());
    auto attr = (*ex)->Explain(ds_->row(row));
    EXPECT_TRUE(attr.ok());
    return std::move(attr).value();
  }

  static Dataset* ds_;
  static GradientBoostedTrees* v1_;
  static GradientBoostedTrees* v2_;
};

Dataset* SwapTest::ds_ = nullptr;
GradientBoostedTrees* SwapTest::v1_ = nullptr;
GradientBoostedTrees* SwapTest::v2_ = nullptr;

TEST_F(SwapTest, SwapUnderConcurrentLoadIsBitIdenticalPerVersion) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 10;
  constexpr size_t kRows = 4;
  const ModelHandle h1 = ModelHandle::Borrow(*v1_, "gbdt", 1);
  const ModelHandle h2 = ModelHandle::Borrow(*v2_, "gbdt", 2);

  std::vector<FeatureAttribution> want1, want2;
  for (size_t r = 0; r < kRows; ++r) {
    want1.push_back(Solo(*v1_, ExplainerKind::kTreeShap, r));
    want2.push_back(Solo(*v2_, ExplainerKind::kTreeShap, r));
  }

  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  ExplanationService service(h1, *ds_, opts);

  std::atomic<size_t> resolved{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> unknown_version{0};
  auto check = [&](const Result<ExplanationResponse>& r, size_t row) {
    if (!r.ok()) return;  // counted via resolved below
    resolved.fetch_add(1);
    const std::vector<FeatureAttribution>* want = nullptr;
    if (r->breakdown.model_version == 1) want = &want1;
    else if (r->breakdown.model_version == 2) want = &want2;
    if (want == nullptr) {
      unknown_version.fetch_add(1);
      return;
    }
    for (size_t j = 0; j < r->attribution.values.size(); ++j)
      if (r->attribution.values[j] != (*want)[row].values[j])
        mismatches.fetch_add(1);
  };

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const size_t row = (t + i) % kRows;
        ExplanationRequest req;
        req.instance = ds_->row(row);
        req.kind = ExplainerKind::kTreeShap;
        check(service.Submit(std::move(req)).get(), row);
      }
    });
  }
  // Swap mid-load, from yet another thread.
  std::thread swapper([&] {
    auto report = service.SwapModel(h2, {.warm_rows = 8});
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  });
  for (auto& th : threads) th.join();
  swapper.join();
  service.Shutdown();

  EXPECT_EQ(resolved.load(), kThreads * kPerThread);  // nothing dropped
  EXPECT_EQ(unknown_version.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  const ExplanationServiceStats stats = service.stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.model_version, 2);
  EXPECT_EQ(service.serving_model().version(), 2);
}

TEST_F(SwapTest, SwapWarmsCacheForHotRows) {
  const ModelHandle h1 = ModelHandle::Borrow(*v1_, "gbdt", 1);
  const ModelHandle h2 = ModelHandle::Borrow(*v2_, "gbdt", 2);
  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  ExplanationService service(h1, *ds_, opts);

  // Establish the kernelshap family and its hot rows on v1.
  constexpr size_t kHot = 3;
  for (size_t r = 0; r < kHot; ++r) {
    ExplanationRequest req;
    req.instance = ds_->row(r);
    req.kind = ExplainerKind::kKernelShap;
    ASSERT_TRUE(service.Submit(std::move(req)).get().ok());
  }

  // The swap replays those rows against v2, filling the family cache with
  // new-version entries before the flip.
  auto report = service.SwapModel(h2, {.warm_rows = 16});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->warmed_families, 1u);
  EXPECT_EQ(report->warmed_rows, kHot);
  const ExplanationServiceStats warmed = service.stats();

  // Post-swap, the same hot rows are answered entirely from the warmed
  // cache: hits grow, misses stay flat.
  for (size_t r = 0; r < kHot; ++r) {
    ExplanationRequest req;
    req.instance = ds_->row(r);
    req.kind = ExplainerKind::kKernelShap;
    auto resp = service.Submit(std::move(req)).get();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->breakdown.model_version, 2);
  }
  service.Shutdown();
  const ExplanationServiceStats after = service.stats();
  EXPECT_GT(after.cache_hits, warmed.cache_hits);
  EXPECT_EQ(after.cache_misses, warmed.cache_misses);
}

TEST_F(SwapTest, SwapRejectsIncompatibleModel) {
  auto logit = LogisticRegression::Fit(*ds_, {});
  ASSERT_TRUE(logit.ok());
  const ModelHandle h1 = ModelHandle::Borrow(*v1_, "gbdt", 1);
  const ModelHandle bad = ModelHandle::Borrow(*logit, "logit", 2);

  ExplanationServiceOptions opts;
  opts.config = FastConfig();
  ExplanationService service(h1, *ds_, opts);
  ExplanationRequest req;
  req.instance = ds_->row(0);
  req.kind = ExplainerKind::kTreeShap;
  ASSERT_TRUE(service.Submit(std::move(req)).get().ok());

  // The treeshap family cannot be rebuilt over a logistic model: the swap
  // is rejected atomically, before anything changes.
  auto report = service.SwapModel(bad);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.serving_model().version(), 1);
  EXPECT_EQ(service.stats().swaps, 0u);

  // And the service keeps serving v1 as if nothing happened.
  ExplanationRequest again;
  again.instance = ds_->row(1);
  again.kind = ExplainerKind::kTreeShap;
  auto resp = service.Submit(std::move(again)).get();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->breakdown.model_version, 1);
  service.Shutdown();
}

TEST_F(SwapTest, SwapRejectsArityMismatch) {
  Dataset narrow = MakeGaussianDataset(50, {.seed = 1, .dims = 2});
  auto m = LogisticRegression::Fit(narrow, {});
  ASSERT_TRUE(m.ok());
  ExplanationService service(ModelHandle::Borrow(*v1_, "gbdt", 1), *ds_, {});
  auto report = service.SwapModel(ModelHandle::Borrow(*m, "narrow", 2));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  service.Shutdown();
}

}  // namespace
}  // namespace xai
