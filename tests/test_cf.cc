#include <gtest/gtest.h>

#include <cmath>

#include "cf/cf_common.h"
#include "cf/dice.h"
#include "cf/geco.h"
#include "cf/recourse.h"
#include "data/synthetic.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"

namespace xai {
namespace {

/// A denied loan applicant (model probability < 0.5).
std::vector<double> FindDenied(const Model& model, const Dataset& ds) {
  for (size_t i = 0; i < ds.n(); ++i) {
    if (model.Predict(ds.row(i)) < 0.35) return ds.row(i);
  }
  ADD_FAILURE() << "no denied applicant found";
  return ds.row(0);
}

TEST(FeatureSpace, DerivedFromData) {
  Dataset ds = MakeLoanDataset(400);
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  EXPECT_EQ(space.num_features(), ds.d());
  EXPECT_TRUE(space.is_numeric[1]);
  EXPECT_FALSE(space.is_numeric[6]);
  EXPECT_LT(space.min_value[1], space.max_value[1]);
  EXPECT_TRUE(space.actionable[6]);
  space.SetImmutable(6);
  EXPECT_FALSE(space.actionable[6]);
}

TEST(FeatureSpace, DistanceAndSparsity) {
  Dataset ds = MakeLoanDataset(400);
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  std::vector<double> a = ds.row(0);
  std::vector<double> b = a;
  EXPECT_DOUBLE_EQ(CounterfactualDistance(space, a, b), 0.0);
  EXPECT_EQ(NumChanged(a, b), 0u);
  b[1] += space.std[1];        // One std of income.
  b[6] = 1.0 - b[6];           // Flip a categorical.
  EXPECT_NEAR(CounterfactualDistance(space, a, b), 2.0, 1e-9);
  EXPECT_EQ(NumChanged(a, b), 2u);
}

TEST(Dice, ProducesValidDiverseCounterfactuals) {
  Dataset ds = MakeLoanDataset(800);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  const std::vector<double> x = FindDenied(*model, ds);

  auto cfs = DiceCounterfactuals(*model, space, x, 1,
                                 {.num_counterfactuals = 4});
  ASSERT_TRUE(cfs.ok());
  EXPECT_GE(cfs->counterfactuals.size(), 2u);
  for (const Counterfactual& cf : cfs->counterfactuals) {
    EXPECT_TRUE(cf.valid);
    EXPECT_GE(cf.prediction, 0.5);
    EXPECT_GT(cf.num_changed, 0u);
  }
  EXPECT_GT(cfs->diversity, 0.0);
}

TEST(Dice, RespectsImmutableFeatures) {
  Dataset ds = MakeLoanDataset(800);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  space.SetImmutable(0);  // age
  space.SetImmutable(6);  // gender
  const std::vector<double> x = FindDenied(*model, ds);
  auto cfs = DiceCounterfactuals(*model, space, x, 1, {});
  ASSERT_TRUE(cfs.ok());
  for (const Counterfactual& cf : cfs->counterfactuals) {
    EXPECT_DOUBLE_EQ(cf.instance[0], x[0]);
    EXPECT_DOUBLE_EQ(cf.instance[6], x[6]);
  }
}

TEST(Dice, SparsificationKeepsValidity) {
  Dataset ds = MakeLoanDataset(600);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  const std::vector<double> x = FindDenied(*model, ds);
  DiceOptions sparse_opts;
  sparse_opts.sparsify = true;
  DiceOptions dense_opts;
  dense_opts.sparsify = false;
  auto sparse = DiceCounterfactuals(*model, space, x, 1, sparse_opts);
  auto dense = DiceCounterfactuals(*model, space, x, 1, dense_opts);
  ASSERT_TRUE(sparse.ok() && dense.ok());
  double avg_sparse = 0;
  for (const auto& cf : sparse->counterfactuals)
    avg_sparse += cf.num_changed;
  avg_sparse /= sparse->counterfactuals.size();
  double avg_dense = 0;
  for (const auto& cf : dense->counterfactuals) avg_dense += cf.num_changed;
  avg_dense /= dense->counterfactuals.size();
  EXPECT_LE(avg_sparse, avg_dense);
}

TEST(Geco, RespectsPlafConstraints) {
  Dataset ds = MakeLoanDataset(800);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  const std::vector<double> x = FindDenied(*model, ds);

  std::vector<PlafConstraint> constraints = {
      PlafConstraint::Immutable(6, "gender"),
      PlafConstraint::Immutable(0, "age"),
      PlafConstraint::MonotoneIncrease(5, "education"),
  };
  auto cfs = GecoCounterfactuals(*model, space, x, 1, constraints, {});
  ASSERT_TRUE(cfs.ok());
  ASSERT_FALSE(cfs->counterfactuals.empty());
  for (const Counterfactual& cf : cfs->counterfactuals) {
    EXPECT_TRUE(cf.valid);
    EXPECT_DOUBLE_EQ(cf.instance[6], x[6]);
    EXPECT_DOUBLE_EQ(cf.instance[0], x[0]);
    EXPECT_GE(cf.instance[5], x[5]);
  }
}

TEST(Geco, PrefersSparseChanges) {
  Dataset ds = MakeLoanDataset(800);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  const std::vector<double> x = FindDenied(*model, ds);
  auto cfs = GecoCounterfactuals(*model, space, x, 1, {}, {});
  ASSERT_TRUE(cfs.ok());
  // Lexicographic fitness: the best counterfactual should change few
  // features.
  EXPECT_LE(cfs->counterfactuals[0].num_changed, 3u);
}

TEST(Geco, ChangeImpliesConstraint) {
  PlafConstraint c = PlafConstraint::ChangeImplies(0, 1, "f0->f1");
  EXPECT_TRUE(c.predicate({1, 1}, {1, 1}));    // Nothing changed.
  EXPECT_TRUE(c.predicate({1, 1}, {2, 2}));    // Both changed.
  EXPECT_FALSE(c.predicate({1, 1}, {2, 1}));   // f0 changed alone.
  EXPECT_TRUE(c.predicate({1, 1}, {1, 2}));    // Only f1 changed: fine.
}

TEST(Recourse, FlipsLogisticDecision) {
  Dataset ds = MakeLoanDataset(1500);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-3});
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  space.SetImmutable(0);  // Age not actionable.
  space.SetImmutable(6);
  const std::vector<double> x = FindDenied(*model, ds);

  auto action = LinearRecourse(*model, space, x, {.target_probability = 0.6});
  ASSERT_TRUE(action.ok());
  ASSERT_TRUE(action->feasible);
  EXPECT_GE(action->new_probability, 0.6 - 1e-9);
  ASSERT_FALSE(action->steps.empty());
  // Verify by applying the steps.
  std::vector<double> moved = x;
  for (const RecourseStep& s : action->steps) {
    EXPECT_NE(s.feature, 0u);
    EXPECT_NE(s.feature, 6u);
    moved[s.feature] = s.to;
  }
  EXPECT_GE(model->Predict(moved), 0.6 - 1e-6);
  EXPECT_NE(action->ToString(ds.schema()).find("recourse"),
            std::string::npos);
}

TEST(Recourse, AlreadyPositiveNeedsNoSteps) {
  Dataset ds = MakeLoanDataset(800);
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  // Find an approved applicant.
  for (size_t i = 0; i < ds.n(); ++i) {
    if (model->Predict(ds.row(i)) > 0.7) {
      auto action =
          LinearRecourse(*model, space, ds.row(i), {.target_probability = 0.55});
      ASSERT_TRUE(action.ok());
      EXPECT_TRUE(action->feasible);
      EXPECT_TRUE(action->steps.empty());
      return;
    }
  }
  FAIL() << "no approved applicant";
}

TEST(Recourse, InfeasibleWhenEverythingImmutable) {
  Dataset ds = MakeLoanDataset(800);
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  for (size_t j = 0; j < space.num_features(); ++j) space.SetImmutable(j);
  const std::vector<double> x = FindDenied(*model, ds);
  auto action = LinearRecourse(*model, space, x, {});
  ASSERT_TRUE(action.ok());
  EXPECT_FALSE(action->feasible);
}

}  // namespace
}  // namespace xai
