// Tests for the flight recorder (obs/trace.h): ring overflow keeping the
// newest events, the latched on/off decision for scoped events and spans,
// trace-context propagation through ThreadPool::ParallelFor, Chrome
// trace-event JSON well-formedness (parsed back by a real JSON parser),
// sampling, and an 8-thread emit/snapshot stress run. Registered under
// the `obs` ctest label so the whole file runs in the TSan job.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/obs.h"

namespace xai {
namespace {

/// Every test starts from a clean, enabled recorder with default knobs
/// and leaves tracing disabled (the default for other test binaries).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetTrace();
    obs::SetTraceSampleEveryN(1);
    obs::SetTraceEnabled(true);
  }
  void TearDown() override {
    obs::SetTraceEnabled(false);
    obs::SetTraceSampleEveryN(1);
    obs::SetTraceBufferCapacity(4096);
    obs::SetCurrentTraceContext({});
    obs::ResetTrace();
  }
};

std::vector<obs::TraceEventView> EventsNamed(const std::string& name) {
  std::vector<obs::TraceEventView> out;
  for (const obs::TraceEventView& e : obs::TraceSnapshot())
    if (e.name != nullptr && name == e.name) out.push_back(e);
  return out;
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser — enough to verify that
// TraceToJson emits syntactically valid JSON (the parse-back check the
// exporter's acceptance requires), without any external dependency.

class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& s) : s_(s) {}
  // The parser holds a reference; refuse temporaries outright.
  explicit MiniJsonParser(std::string&&) = delete;

  bool Parse() {
    i_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return i_ == s_.size();
  }

 private:
  bool Value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++i_;  // '{'
    SkipWs();
    if (Peek('}')) { ++i_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      ++i_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++i_; continue; }
      if (Peek('}')) { ++i_; return true; }
      return false;
    }
  }

  bool Array() {
    ++i_;  // '['
    SkipWs();
    if (Peek(']')) { ++i_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++i_; continue; }
      if (Peek(']')) { ++i_; return true; }
      return false;
    }
  }

  bool String() {
    if (!Peek('"')) return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        const char c = s_[i_];
        if (c == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i_;
            if (i_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[i_])))
              return false;
          }
        } else if (c != '"' && c != '\\' && c != '/' && c != 'b' &&
                   c != 'f' && c != 'n' && c != 'r' && c != 't') {
          return false;
        }
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing '"'
    return true;
  }

  bool Number() {
    const size_t start = i_;
    if (Peek('-')) ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }

  bool Literal(const char* lit) {
    const size_t len = std::strlen(lit);
    if (s_.compare(i_, len, lit) != 0) return false;
    i_ += len;
    return true;
  }

  bool Peek(char c) const { return i_ < s_.size() && s_[i_] == c; }
  void SkipWs() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' ||
            s_[i_] == '\r'))
      ++i_;
  }

  const std::string& s_;
  size_t i_ = 0;
};

// ---------------------------------------------------------------------------

TEST_F(TraceTest, DisabledRecorderIsANoop) {
  obs::SetTraceEnabled(false);
  EXPECT_EQ(obs::NewTraceId(), 0u);
  obs::TraceInstant("test.noop", 1.0);
  obs::TraceCounter("test.noop", 2.0);
  { obs::ScopedTraceEvent ev("test.noop"); }
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  EXPECT_TRUE(obs::TraceSnapshot().empty());
}

TEST_F(TraceTest, InstantCarriesPayloadAndContext) {
  obs::ScopedTraceContext ctx(obs::TraceContext{77, 5});
  obs::TraceInstant("test.payload", 2.5);
  const auto events = EventsNamed("test.payload");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_DOUBLE_EQ(events[0].value, 2.5);
  EXPECT_EQ(events[0].trace_id, 77u);
  EXPECT_EQ(events[0].parent_span, 5u);
}

TEST_F(TraceTest, ScopedEventNestsContextAndRestoresIt) {
  obs::ScopedTraceContext ctx(obs::TraceContext{9, 0});
  uint64_t outer_span = 0;
  {
    obs::ScopedTraceEvent outer("test.outer");
    outer_span = obs::CurrentTraceContext().span_id;
    EXPECT_NE(outer_span, 0u);
    {
      obs::ScopedTraceEvent inner("test.inner");
      EXPECT_NE(obs::CurrentTraceContext().span_id, outer_span);
    }
    EXPECT_EQ(obs::CurrentTraceContext().span_id, outer_span);
  }
  EXPECT_EQ(obs::CurrentTraceContext().span_id, 0u);
  const auto inner = EventsNamed("test.inner");
  ASSERT_EQ(inner.size(), 2u);  // B + E
  EXPECT_EQ(inner[0].phase, 'B');
  EXPECT_EQ(inner[1].phase, 'E');
  // Cross-event linkage: the inner B parents onto the outer span and
  // carries the installed trace_id.
  EXPECT_EQ(inner[0].parent_span, outer_span);
  EXPECT_EQ(inner[0].trace_id, 9u);
}

TEST_F(TraceTest, RingOverflowKeepsNewestEvents) {
  // A fresh thread gets a fresh buffer, created at the reduced capacity;
  // 50 events through a 16-slot ring must keep exactly the newest 16.
  obs::SetTraceBufferCapacity(16);
  std::thread([] {
    for (int i = 0; i < 50; ++i)
      obs::TraceInstant("test.overflow", static_cast<double>(i));
  }).join();
  obs::SetTraceBufferCapacity(4096);

  const auto events = EventsNamed("test.overflow");
  ASSERT_EQ(events.size(), 16u);
  // Snapshot is time-sorted and per-thread timestamps are monotonic, so
  // the survivors are 34..49 in order — drop-oldest, newest retained.
  for (size_t k = 0; k < events.size(); ++k)
    EXPECT_DOUBLE_EQ(events[k].value, 34.0 + static_cast<double>(k));
  EXPECT_GE(obs::TraceDroppedCount(), 34u);
}

TEST_F(TraceTest, ToggleMidScopeIsLatchedBothDirections) {
  // Started while ON, disabled before close: paired B/E still recorded.
  {
    obs::ScopedTraceEvent ev("test.latch_on");
    obs::SetTraceEnabled(false);
  }
  obs::SetTraceEnabled(true);
  const auto on_events = EventsNamed("test.latch_on");
  ASSERT_EQ(on_events.size(), 2u);
  EXPECT_EQ(on_events[0].phase, 'B');
  EXPECT_EQ(on_events[1].phase, 'E');

  // Started while OFF, enabled before close: nothing recorded.
  obs::SetTraceEnabled(false);
  {
    obs::ScopedTraceEvent ev("test.latch_off");
    obs::SetTraceEnabled(true);
  }
  EXPECT_TRUE(EventsNamed("test.latch_off").empty());
}

TEST_F(TraceTest, ScopedSpanAppliesTheSameLatchRule) {
  // ScopedSpan latches metrics and tracing independently, each at
  // construction. Metrics toggled off mid-span: the span still records
  // its aggregate; tracing stays latched the same way.
  obs::SetEnabled(true);
  obs::ResetSpans();
  {
    obs::ScopedSpan span("test_latch_span");
    obs::SetEnabled(false);
    obs::SetTraceEnabled(false);
  }
  obs::SetTraceEnabled(true);
  const auto spans = obs::SpanSnapshot();
  const auto it = spans.find("test_latch_span");
  ASSERT_NE(it, spans.end());
  EXPECT_EQ(it->second.count, 1u);
  const auto trace_events = EventsNamed("test_latch_span");
  ASSERT_EQ(trace_events.size(), 2u);  // latched: paired B/E survived

  // And the off-at-construction direction: no aggregate, no events.
  obs::ResetSpans();
  obs::ResetTrace();
  obs::SetTraceEnabled(false);
  {
    obs::ScopedSpan span("test_latch_span_off");
    obs::SetEnabled(true);
    obs::SetTraceEnabled(true);
  }
  EXPECT_EQ(obs::SpanSnapshot().count("test_latch_span_off"), 0u);
  EXPECT_TRUE(EventsNamed("test_latch_span_off").empty());
  obs::SetEnabled(false);
  obs::ResetSpans();
}

TEST_F(TraceTest, ParallelForPropagatesContextAcrossThreads) {
  SetGlobalThreads(4);
  const uint64_t trace_id = obs::NewTraceId();
  ASSERT_NE(trace_id, 0u);
  uint64_t launch_span = 0;
  {
    obs::ScopedTraceContext ctx(obs::TraceContext{trace_id, 0});
    obs::ScopedTraceEvent launch("test.launch");
    launch_span = obs::CurrentTraceContext().span_id;
    GlobalPool().ParallelFor(0, 8, 1, [](size_t) {
      obs::TraceInstant("test.chunk_work", 1.0);
    });
  }
  SetGlobalThreads(0);

  const uint32_t caller_tid = [&] {
    const auto launches = EventsNamed("test.launch");
    return launches.empty() ? 0u : launches[0].tid;
  }();
  size_t chunks = 0;
  std::set<uint32_t> chunk_tids;
  for (const obs::TraceEventView& e : obs::TraceSnapshot()) {
    if (e.name == nullptr || std::string(e.name) != "pool_chunk") continue;
    if (e.phase != 'B') continue;
    ++chunks;
    chunk_tids.insert(e.tid);
    // The fan-out linkage: every chunk carries the caller's trace_id and
    // parents onto the span that launched the sweep.
    EXPECT_EQ(e.trace_id, trace_id);
    EXPECT_EQ(e.parent_span, launch_span);
    // Chunks run on pool workers, never inline on the caller.
    EXPECT_NE(e.tid, caller_tid);
  }
  EXPECT_EQ(chunks, 8u);
  EXPECT_GE(chunk_tids.size(), 1u);
  // Work inside the chunk inherits the installed context too.
  for (const obs::TraceEventView& e : EventsNamed("test.chunk_work"))
    EXPECT_EQ(e.trace_id, trace_id);
}

TEST_F(TraceTest, SamplingHandsOutOneIdInEveryN) {
  obs::SetTraceSampleEveryN(4);
  size_t sampled = 0;
  for (int i = 0; i < 16; ++i)
    if (obs::NewTraceId() != 0) ++sampled;
  EXPECT_EQ(sampled, 4u);
}

TEST_F(TraceTest, TraceJsonParsesBackAndBalances) {
  {
    obs::ScopedTraceEvent outer("test.json_outer");
    obs::TraceInstant("test.json_instant", 3.25);
    obs::TraceCounter("test.json_counter", 7.0);
    obs::TraceAsyncBegin("test.json_async", 0x123);
    obs::TraceAsyncEnd("test.json_async", 0x123);
    { obs::ScopedTraceEvent inner("test.json \"quoted\\name\""); }
  }
  const std::string json = obs::TraceToJson();

  MiniJsonParser parser(json);
  EXPECT_TRUE(parser.Parse()) << json;

  // Structural spot checks on top of raw validity.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  EXPECT_NE(json.find("test.json_instant"), std::string::npos);
  size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos)
    ++begins, pos += 8;
  pos = 0;
  while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos)
    ++ends, pos += 8;
  EXPECT_EQ(begins, ends);  // importers require balanced durations
  EXPECT_GE(begins, 2u);
}

TEST_F(TraceTest, OrphanedEndsAreDroppedFromJson) {
  // Overflow a tiny ring with nested scopes so some 'E' events survive
  // whose 'B' was overwritten; the exporter must drop them (and stay
  // balanced) rather than emit an import-breaking orphan.
  obs::SetTraceBufferCapacity(8);
  std::thread([] {
    for (int i = 0; i < 20; ++i) obs::ScopedTraceEvent ev("test.orphan");
  }).join();
  obs::SetTraceBufferCapacity(4096);
  const std::string json = obs::TraceToJson();
  MiniJsonParser parser(json);
  EXPECT_TRUE(parser.Parse()) << json;
  size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos)
    ++begins, pos += 8;
  pos = 0;
  while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos)
    ++ends, pos += 8;
  EXPECT_EQ(begins, ends);
}

TEST_F(TraceTest, WriteTraceJsonErrorsAreTyped) {
  EXPECT_EQ(obs::WriteTraceJson("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(obs::WriteTraceJson("/nonexistent-dir-xaidb/trace.json").code(),
            StatusCode::kIOError);

  obs::TraceInstant("test.write", 1.0);
  const std::string path = "/tmp/xaidb_test_trace.json";
  ASSERT_TRUE(obs::WriteTraceJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  MiniJsonParser parser(content);
  EXPECT_TRUE(parser.Parse());
  EXPECT_NE(content.find("test.write"), std::string::npos);
}

// 8 writer threads emit scoped + instant + counter events through small
// rings (forcing constant wraparound) while the main thread repeatedly
// snapshots and serializes. Runs under TSan via the `obs` label: the
// seqlock slots must be data-race-free by construction.
TEST_F(TraceTest, ConcurrentEmitAndSnapshotStress) {
  constexpr size_t kThreads = 8;
  constexpr int kIters = 2000;
  obs::SetTraceBufferCapacity(64);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        obs::ScopedTraceEvent ev("test.stress_scope");
        obs::TraceInstant("test.stress_instant", static_cast<double>(i));
        obs::TraceCounter("test.stress_counter", static_cast<double>(i));
      }
    });
  }
  for (int r = 0; r < 50; ++r) {
    const std::vector<obs::TraceEventView> snap = obs::TraceSnapshot();
    for (const obs::TraceEventView& e : snap) {
      // Every surviving slot must hold a fully-formed event.
      ASSERT_NE(e.name, nullptr);
      ASSERT_TRUE(e.phase == 'B' || e.phase == 'E' || e.phase == 'i' ||
                  e.phase == 'C' || e.phase == 'b' || e.phase == 'e');
    }
    const std::string json = obs::TraceToJson();
    ASSERT_FALSE(json.empty());
  }
  for (std::thread& w : writers) w.join();
  obs::SetTraceBufferCapacity(4096);
  // 4 events per iteration (B, i, C, E) per thread reached the recorder.
  EXPECT_GE(obs::TraceEventCount(), kThreads * kIters * 4u);
  const std::string final_json = obs::TraceToJson();
  MiniJsonParser parser(final_json);
  EXPECT_TRUE(parser.Parse());
}

}  // namespace
}  // namespace xai
