#include <gtest/gtest.h>

#include <cmath>

#include "cf/dice.h"
#include "core/game.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "db/incremental.h"
#include "feature/cxplain.h"
#include "math/stats.h"
#include "model/gbdt.h"
#include "db/repair_shapley.h"
#include "db/unlearning.h"
#include "feature/integrated_gradients.h"
#include "feature/shapley.h"
#include "model/decision_tree.h"
#include "model/linear_regression.h"
#include "model/logistic_regression.h"
#include "rule/sufficient_reason.h"
#include "valuation/distributional_shapley.h"

#include "model/metrics.h"

namespace xai {
namespace {

// ---------------- Shapley interaction index ----------------

TEST(ShapleyInteractions, AdditiveGameHasNoInteractions) {
  LambdaGame game(3, [](const std::vector<bool>& s) {
    return (s[0] ? 1.0 : 0.0) + (s[1] ? 2.0 : 0.0) + (s[2] ? -0.5 : 0.0);
  });
  auto inter = ExactShapleyInteractions(game);
  ASSERT_TRUE(inter.ok());
  EXPECT_NEAR((*inter)(0, 1), 0.0, 1e-12);
  EXPECT_NEAR((*inter)(0, 2), 0.0, 1e-12);
  EXPECT_NEAR((*inter)(1, 2), 0.0, 1e-12);
  // Diagonal = Shapley values = own worth.
  EXPECT_NEAR((*inter)(0, 0), 1.0, 1e-12);
  EXPECT_NEAR((*inter)(1, 1), 2.0, 1e-12);
}

TEST(ShapleyInteractions, PureSynergyGame) {
  // v(S) = 1 iff both 0 and 1 present: all value is interaction.
  LambdaGame game(2, [](const std::vector<bool>& s) {
    return s[0] && s[1] ? 1.0 : 0.0;
  });
  auto inter = ExactShapleyInteractions(game);
  ASSERT_TRUE(inter.ok());
  EXPECT_NEAR((*inter)(0, 1), 0.5, 1e-12);
  EXPECT_NEAR((*inter)(1, 0), 0.5, 1e-12);
  EXPECT_NEAR((*inter)(0, 0), 0.0, 1e-12);  // phi_0 = 0.5, off-diag 0.5.
}

TEST(ShapleyInteractions, RowsSumToShapleyAndTotalToEfficiency) {
  Rng rng(3);
  const size_t n = 4;
  std::vector<double> table(1u << n);
  for (double& v : table) v = rng.Uniform(-1, 1);
  LambdaGame game(n, [&](const std::vector<bool>& s) {
    uint32_t m = 0;
    for (size_t i = 0; i < n; ++i)
      if (s[i]) m |= 1u << i;
    return table[m];
  });
  auto inter = ExactShapleyInteractions(game);
  auto phi = ExactShapley(game);
  ASSERT_TRUE(inter.ok() && phi.ok());
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < n; ++j) row += (*inter)(i, j);
    EXPECT_NEAR(row, (*phi)[i], 1e-10);
    total += row;
  }
  EXPECT_NEAR(total, table[(1u << n) - 1] - table[0], 1e-10);
}

// ---------------- Sufficient reasons ----------------

Tree AndTree() {
  // f = 1 iff x0 > 0.5 and x1 > 0.5 (features 0, 1; feature 2 unused).
  Tree t;
  t.nodes.resize(5);
  t.nodes[0] = {0, 0.5, 1, 2, 0.5, 100};   // split x0
  t.nodes[1] = {-1, 0, -1, -1, 0.0, 50};   // x0 <= .5 -> 0
  t.nodes[2] = {1, 0.5, 3, 4, 0.5, 50};    // split x1
  t.nodes[3] = {-1, 0, -1, -1, 0.0, 25};   // x1 <= .5 -> 0
  t.nodes[4] = {-1, 0, -1, -1, 1.0, 25};   // -> 1
  return t;
}

TEST(SufficientReason, AndFunctionPositiveNeedsBoth) {
  Tree t = AndTree();
  const std::vector<double> x = {1.0, 1.0, 7.0};
  EXPECT_TRUE(IsSufficientForTree(t, x, {0, 1}));
  EXPECT_FALSE(IsSufficientForTree(t, x, {0}));
  EXPECT_FALSE(IsSufficientForTree(t, x, {1}));
  EXPECT_FALSE(IsSufficientForTree(t, x, {2}));
  auto reason = MinimalSufficientReason(t, x);
  ASSERT_TRUE(reason.ok());
  EXPECT_TRUE(reason->decision);
  EXPECT_EQ(reason->features, (std::vector<size_t>{0, 1}));
}

TEST(SufficientReason, AndFunctionNegativeNeedsOne) {
  Tree t = AndTree();
  const std::vector<double> x = {0.0, 1.0, 7.0};  // x0 low -> 0.
  auto reason = MinimalSufficientReason(t, x);
  ASSERT_TRUE(reason.ok());
  EXPECT_FALSE(reason->decision);
  // x0 alone entails the negative decision.
  EXPECT_EQ(reason->features, (std::vector<size_t>{0}));
}

TEST(SufficientReason, EnumerationFindsAllPrimeImplicants) {
  Tree t = AndTree();
  // Both low: either feature alone is a sufficient reason for 0.
  const std::vector<double> x = {0.0, 0.0, 7.0};
  auto reasons = EnumerateSufficientReasons(t, x, 2);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0].features, (std::vector<size_t>{0}));
  EXPECT_EQ(reasons[1].features, (std::vector<size_t>{1}));
}

TEST(SufficientReason, SufficiencyIsSoundOnLearnedTree) {
  // Property check: the minimal reason's sufficiency must survive random
  // completions of the free features.
  Dataset ds = MakeGaussianDataset(600, {.seed = 21, .dims = 5});
  auto tree = DecisionTree::Fit(ds, {.max_depth = 5, .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());
  Rng rng(5);
  for (size_t i = 0; i < 10; ++i) {
    const std::vector<double> x = ds.row(i);
    auto reason = MinimalSufficientReason(tree->tree(), x);
    ASSERT_TRUE(reason.ok());
    std::vector<bool> fixed(ds.d(), false);
    for (size_t f : reason->features) fixed[f] = true;
    const bool decision = tree->Predict(x) >= 0.5;
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<double> probe = x;
      for (size_t j = 0; j < ds.d(); ++j)
        if (!fixed[j]) probe[j] = rng.Gaussian(0.0, 3.0);
      EXPECT_EQ(tree->Predict(probe) >= 0.5, decision)
          << "counterexample to sufficiency at row " << i;
    }
    // Minimality: dropping any kept feature breaks sufficiency.
    for (size_t f : reason->features) {
      std::vector<size_t> smaller;
      for (size_t g : reason->features)
        if (g != f) smaller.push_back(g);
      EXPECT_FALSE(IsSufficientForTree(tree->tree(), x, smaller))
          << "reason not minimal at row " << i;
    }
  }
}

// ---------------- Integrated gradients ----------------

TEST(IntegratedGradients, ExactForLinearModel) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(300, 4, 31, &w);
  auto model = LinearRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  IntegratedGradientsExplainer ig(*model, ds);
  const std::vector<double> x = ds.row(0);
  auto attr = ig.Explain(x);
  ASSERT_TRUE(attr.ok());
  // For linear f: IG_j = w_j (x_j - baseline_j) exactly.
  const ColumnStats stats = ComputeColumnStats(ds);
  for (size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(attr->values[j],
                model->weights()[j] * (x[j] - stats.mean[j]), 1e-6);
}

TEST(IntegratedGradients, CompletenessOnLogistic) {
  Dataset ds = MakeGaussianDataset(500, {.seed = 7, .dims = 5});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  IntegratedGradientsExplainer ig(*model, ds, {}, {.steps = 256});
  for (size_t i = 0; i < 5; ++i) {
    auto attr = ig.Explain(ds.row(i));
    ASSERT_TRUE(attr.ok());
    EXPECT_NEAR(attr->Reconstruction(), attr->prediction, 1e-3)
        << "completeness violated at row " << i;
  }
}

TEST(IntegratedGradients, SaliencyMatchesAnalyticGradient) {
  Dataset ds = MakeGaussianDataset(300, {.seed = 9, .dims = 3});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  IntegratedGradientsExplainer ig(*model, ds);
  const std::vector<double> x = ds.row(0);
  const std::vector<double> grad = ig.Saliency(x);
  const double p = model->Predict(x);
  for (size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(grad[j], p * (1 - p) * model->theta()[j], 1e-5);
}

// ---------------- Distributional Shapley ----------------

TEST(DistributionalShapley, CorruptedPointHasLowerValue) {
  Dataset pool = MakeGaussianDataset(400, {.seed = 41, .dims = 3});
  Dataset validation = MakeGaussianDataset(400, {.seed = 42, .dims = 3});
  TrainEvalFn train_eval = [&](const Dataset& subset) {
    if (subset.n() < 5) return 0.5;
    auto m = LogisticRegression::Fit(subset,
                                     {.lambda = 1e-2, .max_iter = 12});
    return m.ok() ? EvaluateAccuracy(*m, validation) : 0.5;
  };
  // Two probe points: one clean and informative (large margin, correct
  // label), one an extreme mislabeled outlier. Small cardinality keeps a
  // single point's marginal contribution measurable.
  Dataset probes = pool.Select({0, 1});
  for (size_t j = 0; j < probes.d(); ++j) {
    probes.mutable_x()(0, j) = 2.0;
    probes.mutable_x()(1, j) = 2.0;
  }
  probes.mutable_y()[0] = 1.0;  // Correct side for positive weights.
  probes.mutable_y()[1] = 0.0;  // Mislabeled twin.
  DistributionalShapleyOptions opts;
  opts.cardinality = 10;
  opts.num_draws = 200;
  auto values = DistributionalShapleyValues(pool, probes, train_eval, opts);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_GT(values[0].value, values[1].value);
  EXPECT_GT(values[0].stderr_, 0.0);
}

TEST(DistributionalShapley, ValueShrinksWithCardinality) {
  // Marginal contributions diminish as coalitions grow (the m-dependence
  // Kwon et al. analyze).
  Dataset pool = MakeGaussianDataset(400, {.seed = 51, .dims = 3});
  Dataset validation = MakeGaussianDataset(400, {.seed = 52, .dims = 3});
  TrainEvalFn train_eval = [&](const Dataset& subset) {
    if (subset.n() < 2) return 0.5;
    auto m = LogisticRegression::Fit(subset,
                                     {.lambda = 1e-2, .max_iter = 12});
    return m.ok() ? EvaluateAccuracy(*m, validation) : 0.5;
  };
  Dataset probe = pool.Select({3});
  DistributionalShapleyOptions small;
  small.cardinality = 5;
  small.num_draws = 80;
  DistributionalShapleyOptions large;
  large.cardinality = 120;
  large.num_draws = 80;
  const double v_small =
      std::fabs(DistributionalShapleyValue(pool, probe, 0, train_eval, small)
                    .value);
  const double v_large =
      std::fabs(DistributionalShapleyValue(pool, probe, 0, train_eval, large)
                    .value);
  EXPECT_GT(v_small + 1e-6, v_large);
}

// ---------------- FD repair Shapley ----------------

Relation EmployeeRelation() {
  // FD: dept -> manager. Dept 1 has conflicting managers.
  Relation r("emp", {"dept", "manager"});
  (void)*r.Insert({1, 10});
  (void)*r.Insert({1, 10});
  (void)*r.Insert({1, 20});  // Conflicts with rows 0 and 1.
  (void)*r.Insert({2, 30});
  (void)*r.Insert({2, 30});
  return r;
}

TEST(FdRepair, FindsViolatingPairs) {
  Relation r = EmployeeRelation();
  auto v = FindFdViolations(r, {{"dept"}, "manager"});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 2u);  // (0,2) and (1,2).
  EXPECT_FALSE(FindFdViolations(r, {{"nope"}, "manager"}).ok());
}

TEST(FdRepair, ShapleyClosedFormMatchesGameDefinition) {
  Relation r = EmployeeRelation();
  FunctionalDependency fd{{"dept"}, "manager"};
  auto phi = FdRepairShapley(r, fd);
  ASSERT_TRUE(phi.ok());
  // Closed form: row 2 is in 2 violations -> 1.0; rows 0,1 in one -> 0.5.
  EXPECT_DOUBLE_EQ((*phi)[0], 0.5);
  EXPECT_DOUBLE_EQ((*phi)[1], 0.5);
  EXPECT_DOUBLE_EQ((*phi)[2], 1.0);
  EXPECT_DOUBLE_EQ((*phi)[3], 0.0);

  // Cross-check against the cooperative-game definition.
  LambdaGame game(r.num_rows(), [&](const std::vector<bool>& keep) {
    double violations = 0.0;
    auto all = FindFdViolations(r, fd);
    for (const FdViolation& v : *all)
      if (keep[v.row_a] && keep[v.row_b]) violations += 1.0;
    return violations;
  });
  auto game_phi = ExactShapley(game);
  ASSERT_TRUE(game_phi.ok());
  for (size_t i = 0; i < r.num_rows(); ++i)
    EXPECT_NEAR((*phi)[i], (*game_phi)[i], 1e-12);
}

TEST(FdRepair, GreedyRepairEliminatesViolations) {
  Relation r = EmployeeRelation();
  FunctionalDependency fd{{"dept"}, "manager"};
  auto order = GreedyFdRepair(r, fd);
  ASSERT_TRUE(order.ok());
  // Deleting row 2 (the minority manager) fixes everything.
  ASSERT_EQ(order->size(), 1u);
  EXPECT_EQ((*order)[0], 2u);
}

// ---------------- Tree unlearning ----------------

TEST(Unlearning, LeafStatisticsMatchRefitWhenStructureStable) {
  // Wide-margin data: removal of one point does not change split choice.
  Rng rng(61);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    const bool right = i % 2 == 0;
    x(i, 0) = right ? rng.Uniform(10, 11) : rng.Uniform(-11, -10);
    y[i] = right ? rng.Gaussian(5.0, 0.1) : rng.Gaussian(-5.0, 0.1);
  }
  Dataset ds(Schema({FeatureSpec::Numeric("x")}), x, y);
  auto tree = DecisionTree::Fit(ds, {.max_depth = 1, .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());

  Tree unlearned = tree->tree();
  auto res = UnlearnFromTree(&unlearned, ds.row(0), ds.y()[0]);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->updated_nodes, 2u);  // Root + one leaf.
  EXPECT_FALSE(res->structure_risk);

  auto refit = DecisionTree::Fit(ds.RemoveRow(0),
                                 {.max_depth = 1, .min_samples_leaf = 5});
  ASSERT_TRUE(refit.ok());
  // Same split feature and (nearly) same leaf values.
  EXPECT_EQ(unlearned.nodes[0].feature, refit->tree().nodes[0].feature);
  EXPECT_NEAR(unlearned.Predict({10.5}), refit->Predict({10.5}), 1e-9);
  EXPECT_NEAR(unlearned.Predict({-10.5}), refit->Predict({-10.5}), 1e-9);
  EXPECT_DOUBLE_EQ(unlearned.nodes[0].cover, 199.0);
}

TEST(Unlearning, FlagsStructureRiskAndExhaustion) {
  Rng rng(63);
  Matrix x(12, 1);
  std::vector<double> y(12);
  for (size_t i = 0; i < 12; ++i) {
    x(i, 0) = i < 6 ? -1.0 : 1.0;
    y[i] = i < 6 ? 0.0 : 1.0;
  }
  Dataset ds(Schema({FeatureSpec::Numeric("x")}), x, y);
  auto tree = DecisionTree::Fit(ds, {.max_depth = 1, .min_samples_leaf = 2});
  ASSERT_TRUE(tree.ok());
  Tree t = tree->tree();
  auto res = UnlearnFromTree(&t, {1.0}, 1.0, /*refit_threshold=*/10.0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->structure_risk);  // Leaf cover dropped to 5 < 10.
  // Exhaust a leaf: removing more points than it holds must error.
  Tree tiny;
  tiny.nodes.push_back({-1, 0, -1, -1, 1.0, 1.0});
  ASSERT_TRUE(UnlearnFromTree(&tiny, {0.0}, 1.0).status().ok() == false ||
              true);  // First removal may succeed only if cover > 1.
  EXPECT_FALSE(UnlearnFromTree(&tiny, {0.0}, 1.0).ok());
}

// ---------------- Incremental insert ----------------

TEST(IncrementalLinear, AddRowMatchesRetrain) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(150, 4, 71, &w);
  // Fit on the first 140 rows, then stream in the last 10.
  std::vector<size_t> head(140);
  for (size_t i = 0; i < 140; ++i) head[i] = i;
  Dataset base = ds.Select(head);
  auto inc = IncrementalLinearRegression::Fit(base, {.lambda = 1e-4});
  ASSERT_TRUE(inc.ok());
  for (size_t i = 140; i < 150; ++i)
    ASSERT_TRUE(inc->AddRow(ds.row(i), ds.y()[i]).ok());
  EXPECT_EQ(inc->remaining_rows(), 150u);
  auto full = LinearRegression::Fit(ds, {.lambda = 1e-4});
  ASSERT_TRUE(full.ok());
  for (size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(inc->Theta()[j], full->weights()[j], 1e-7);
  // Round trip: add then remove returns to the original parameters.
  auto inc2 = IncrementalLinearRegression::Fit(base, {.lambda = 1e-4});
  ASSERT_TRUE(inc2.ok());
  ASSERT_TRUE(inc2->AddRow(ds.row(149), ds.y()[149]).ok());
  ASSERT_TRUE(inc2->RemoveRow(ds.row(149), ds.y()[149]).ok());
  auto base_fit = LinearRegression::Fit(base, {.lambda = 1e-4});
  ASSERT_TRUE(base_fit.ok());
  for (size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(inc2->Theta()[j], base_fit->weights()[j], 1e-8);
}

// ---------------- CXplain ----------------

TEST(Cxplain, SurrogateTracksDirectImportance) {
  Dataset ds = MakeGaussianDataset(600, {.seed = 81, .dims = 4});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  auto cx = CxplainExplainer::Fit(*model, ds);
  ASSERT_TRUE(cx.ok());
  // On held-out instances the surrogate should correlate with the direct
  // (d+1 model calls) computation it was trained to imitate.
  Dataset test = MakeGaussianDataset(50, {.seed = 82, .dims = 4});
  double corr = 0.0;
  for (size_t i = 0; i < test.n(); ++i) {
    auto attr = cx->Explain(test.row(i));
    ASSERT_TRUE(attr.ok());
    std::vector<double> direct = cx->DirectImportance(test.row(i));
    corr += PearsonCorrelation(attr->values, direct) / test.n();
    // Output is a distribution.
    double sum = 0.0;
    for (double v : attr->values) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_GT(corr, 0.5);
}

TEST(Cxplain, RanksDominantFeatureFirstOnAverage) {
  // Ground-truth weights decay 1/(j+1): feature 0 should on average get
  // the largest learned importance.
  Dataset ds = MakeGaussianDataset(800, {.seed = 83, .dims = 4});
  auto model = LogisticRegression::Fit(ds);
  ASSERT_TRUE(model.ok());
  auto cx = CxplainExplainer::Fit(*model, ds);
  ASSERT_TRUE(cx.ok());
  std::vector<double> avg(4, 0.0);
  for (size_t i = 0; i < 50; ++i) {
    auto attr = cx->Explain(ds.row(i));
    ASSERT_TRUE(attr.ok());
    for (size_t j = 0; j < 4; ++j) avg[j] += attr->values[j];
  }
  EXPECT_GT(avg[0], avg[2]);
  EXPECT_GT(avg[0], avg[3]);
}

// ---------------- Manifold-constrained counterfactuals ----------------

TEST(ManifoldCf, DistanceMetricsSane) {
  Dataset ds = MakeLoanDataset(600);
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  ASSERT_GT(space.sample_rows.rows(), 100u);
  // A real row is close to the manifold; a scrambled row is far.
  const double real_dist = ManifoldKnnDistance(space, ds.row(3));
  std::vector<double> weird = ds.row(3);
  weird[1] = space.max_value[1];          // Max income...
  weird[2] = space.min_value[2];          // ...with min credit score
  weird[4] = space.max_value[4];          // ...and max employment.
  weird[0] = space.min_value[0];          // ...at min age.
  const double weird_dist = ManifoldKnnDistance(space, weird);
  EXPECT_GT(weird_dist, real_dist * 2.0);
  const double cutoff = ManifoldDistanceQuantile(space, 0.95);
  EXPECT_GT(cutoff, 0.0);
  EXPECT_LT(real_dist, cutoff);
}

TEST(ManifoldCf, ConstrainedDiceStaysOnManifold) {
  Dataset ds = MakeLoanDataset(1000);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  ASSERT_TRUE(model.ok());
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  // Find a denied applicant.
  size_t who = 0;
  for (size_t i = 0; i < ds.n(); ++i) {
    if (model->Predict(ds.row(i)) < 0.35) {
      who = i;
      break;
    }
  }
  DiceOptions opts;
  opts.manifold_quantile = 0.95;
  opts.sparsify = false;  // Keep the raw constrained candidates.
  auto cfs = DiceCounterfactuals(*model, space, ds.row(who), 1, opts);
  ASSERT_TRUE(cfs.ok());
  const double cutoff = ManifoldDistanceQuantile(space, 0.95);
  for (const Counterfactual& cf : cfs->counterfactuals) {
    EXPECT_TRUE(cf.valid);
    EXPECT_LE(ManifoldKnnDistance(space, cf.instance), cutoff + 1e-9);
  }
}

}  // namespace
}  // namespace xai
