// Compilation test for the umbrella header: every public API must be
// reachable through a single include, and the headers must be mutually
// consistent (no ODR/guard collisions).
#include "xai.h"

#include <gtest/gtest.h>

namespace xai {
namespace {

TEST(Umbrella, EndToEndSmoke) {
  Dataset ds = MakeLoanDataset(300);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 10});
  ASSERT_TRUE(model.ok());
  TreeShapExplainer explainer(*model, ds.schema());
  auto attr = explainer.Explain(ds.row(0));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->values.size(), ds.d());
}

}  // namespace
}  // namespace xai
