#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "math/stats.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/knn.h"
#include "model/linear_regression.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "model/model.h"

namespace xai {
namespace {

TEST(LinearRegression, RecoversGroundTruth) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(2000, 6, 13, &w);
  auto m = LinearRegression::Fit(ds);
  ASSERT_TRUE(m.ok());
  for (size_t j = 0; j < w.size(); ++j)
    EXPECT_NEAR(m->weights()[j], w[j], 0.05) << "weight " << j;
  EXPECT_NEAR(m->intercept(), 0.0, 0.05);
  EXPECT_GT(R2Score(m->PredictBatch(ds.x()), ds.y()), 0.95);
}

TEST(LinearRegression, RejectsBadInput) {
  EXPECT_FALSE(LinearRegression::Fit(Matrix(0, 0), {}).ok());
  EXPECT_FALSE(LinearRegression::Fit(Matrix(3, 2), {1.0}).ok());
}

TEST(LogisticRegression, SeparatesAndConverges) {
  Dataset ds = MakeGaussianDataset(2000, {.seed = 2, .dims = 4});
  auto m = LogisticRegression::Fit(ds, {.lambda = 1e-3});
  ASSERT_TRUE(m.ok());
  EXPECT_GT(EvaluateAccuracy(*m, ds), 0.75);
  EXPECT_GT(EvaluateAuc(*m, ds), 0.8);
  // Ground-truth weights are 2/(j+1): ordering should be recovered.
  EXPECT_GT(m->theta()[0], m->theta()[2]);
  EXPECT_GT(m->theta()[0], 0.0);
}

TEST(LogisticRegression, NewtonReachesStationaryPoint) {
  Dataset ds = MakeGaussianDataset(500, {.seed = 4, .dims = 3});
  auto m = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(m.ok());
  // Gradient of objective at fitted params ~ 0.
  const size_t d1 = m->theta().size();
  std::vector<double> grad(d1, 0.0);
  for (size_t i = 0; i < ds.n(); ++i) {
    std::vector<double> g = m->SampleGradient(ds.row(i), ds.y()[i]);
    for (size_t a = 0; a < d1; ++a)
      grad[a] += g[a] / static_cast<double>(ds.n());
  }
  for (size_t a = 0; a < d1; ++a) grad[a] += m->lambda() * m->theta()[a];
  for (size_t a = 0; a < d1; ++a) EXPECT_NEAR(grad[a], 0.0, 1e-7);
}

TEST(LogisticRegression, WarmStartMatchesColdFit) {
  Dataset ds = MakeGaussianDataset(400, {.seed = 6, .dims = 3});
  LogisticRegression::Options o{.lambda = 1e-2, .max_iter = 50, .tol = 1e-12};
  auto cold = LogisticRegression::Fit(ds, o);
  ASSERT_TRUE(cold.ok());
  auto warm = LogisticRegression::FitFrom(ds.x(), ds.y(), cold->theta(), o);
  ASSERT_TRUE(warm.ok());
  for (size_t a = 0; a < cold->theta().size(); ++a)
    EXPECT_NEAR(warm->theta()[a], cold->theta()[a], 1e-8);
}

TEST(LogisticRegression, HessianIsObjectiveCurvature) {
  Dataset ds = MakeGaussianDataset(300, {.seed = 8, .dims = 2});
  auto m = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  ASSERT_TRUE(m.ok());
  // Finite-difference check of the Hessian-vector product via objective.
  Matrix h = m->ObjectiveHessian(ds.x());
  // Numerical: d^2 J / d theta_0^2.
  const double eps = 1e-4;
  auto objective_at = [&](double d0) {
    std::vector<double> theta = m->theta();
    theta[0] += d0;
    LogisticRegression probe = *m;
    // Recompute objective by hand at shifted parameters.
    double loss = 0.0;
    for (size_t i = 0; i < ds.n(); ++i) {
      double z = theta.back();
      for (size_t j = 0; j + 1 < theta.size(); ++j)
        z += theta[j] * ds.x()(i, j);
      loss += Log1pExp(z) - ds.y()[i] * z;
    }
    loss /= static_cast<double>(ds.n());
    double reg = 0.0;
    for (double t : theta) reg += t * t;
    return loss + 0.5 * m->lambda() * reg;
  };
  const double numeric =
      (objective_at(eps) - 2 * objective_at(0) + objective_at(-eps)) /
      (eps * eps);
  EXPECT_NEAR(h(0, 0), numeric, 1e-4);
}

TEST(DecisionTree, LearnsAxisAlignedConcept) {
  // y = 1 iff x0 > 0 and x1 > 0: needs depth 2.
  Rng rng(10);
  Matrix x(800, 2);
  std::vector<double> y(800);
  for (size_t i = 0; i < 800; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);
    y[i] = (x(i, 0) > 0 && x(i, 1) > 0) ? 1.0 : 0.0;
  }
  Dataset ds(Schema({FeatureSpec::Numeric("x0"), FeatureSpec::Numeric("x1")}),
             x, y);
  auto tree = DecisionTree::Fit(ds, {.max_depth = 3, .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(EvaluateAccuracy(*tree, ds), 0.97);
  EXPECT_DOUBLE_EQ(PredictLabel(*tree, {0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(PredictLabel(*tree, {-0.5, 0.5}), 0.0);
}

TEST(DecisionTree, RespectsDepthAndLeafLimits) {
  Dataset ds = MakeGaussianDataset(500, {.seed = 12, .dims = 5});
  auto tree = DecisionTree::Fit(ds, {.max_depth = 2, .min_samples_leaf = 50});
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->tree().MaxDepth(), 2);
  for (const TreeNode& n : tree->tree().nodes) {
    if (n.is_leaf()) {
      EXPECT_GE(n.cover, 50.0);
    }
  }
}

TEST(TreeStruct, CoverAndExpectedValue) {
  Dataset ds = MakeGaussianDataset(256, {.seed = 14, .dims = 3});
  auto tree = DecisionTree::Fit(ds, {.max_depth = 4, .min_samples_leaf = 5});
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(tree->tree().nodes[0].cover, 256.0);
  // Expected value = mean prediction over training data (cover-weighted).
  double mean_pred = 0.0;
  for (size_t i = 0; i < ds.n(); ++i)
    mean_pred += tree->Predict(ds.row(i)) / static_cast<double>(ds.n());
  EXPECT_NEAR(tree->tree().ExpectedValue(), mean_pred, 1e-9);
}

TEST(RandomForest, BeatsChanceAndIsDeterministic) {
  Dataset ds = MakeLoanDataset(1500);
  Rng rng(3);
  auto [train, test] = ds.Split(0.7, &rng);
  auto rf = RandomForest::Fit(train, {.num_trees = 30});
  ASSERT_TRUE(rf.ok());
  EXPECT_GT(EvaluateAuc(*rf, test), 0.75);
  auto rf2 = RandomForest::Fit(train, {.num_trees = 30});
  ASSERT_TRUE(rf2.ok());
  EXPECT_DOUBLE_EQ(rf->Predict(test.row(0)), rf2->Predict(test.row(0)));
}

TEST(Gbdt, ClassificationAccuracy) {
  Dataset ds = MakeLoanDataset(2000);
  Rng rng(5);
  auto [train, test] = ds.Split(0.7, &rng);
  auto gbdt = GradientBoostedTrees::Fit(train, {.num_rounds = 60});
  ASSERT_TRUE(gbdt.ok());
  EXPECT_GT(EvaluateAuc(*gbdt, test), 0.8);
  // Margin/probability consistency.
  const std::vector<double> x = test.row(0);
  EXPECT_NEAR(gbdt->Predict(x), Sigmoid(gbdt->PredictMargin(x)), 1e-12);
}

TEST(Gbdt, RegressionReducesError) {
  std::vector<double> w;
  Dataset ds = MakeLinearRegressionDataset(1000, 4, 21, &w);
  auto few = GradientBoostedTrees::Fit(
      ds, {.loss = GbdtLoss::kSquared, .num_rounds = 5});
  auto many = GradientBoostedTrees::Fit(
      ds, {.loss = GbdtLoss::kSquared, .num_rounds = 80});
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  const double mse_few = MeanSquaredError(few->PredictBatch(ds.x()), ds.y());
  const double mse_many =
      MeanSquaredError(many->PredictBatch(ds.x()), ds.y());
  EXPECT_LT(mse_many, mse_few);
}

TEST(Knn, PredictsByNeighborhood) {
  Schema schema({FeatureSpec::Numeric("x")});
  Matrix x = {{0.0}, {0.1}, {0.2}, {10.0}, {10.1}, {10.2}};
  Dataset ds(schema, x, {0, 0, 0, 1, 1, 1});
  auto knn = KnnClassifier::Fit(ds, 3);
  ASSERT_TRUE(knn.ok());
  EXPECT_DOUBLE_EQ(knn->Predict({0.05}), 0.0);
  EXPECT_DOUBLE_EQ(knn->Predict({10.05}), 1.0);
  auto order = knn->NeighborsByDistance({0.0});
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[5], 5u);
  EXPECT_FALSE(KnnClassifier::Fit(ds, 0).ok());
}

TEST(Metrics, KnownValues) {
  std::vector<double> probs = {0.9, 0.8, 0.3, 0.1};
  std::vector<double> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(Accuracy(probs, labels), 0.5);
  // AUC: pairs (pos, neg): (0.9 vs 0.8): correct, (0.9 vs 0.1): correct,
  // (0.3 vs 0.8): wrong, (0.3 vs 0.1): correct -> 3/4.
  EXPECT_DOUBLE_EQ(Auc(probs, labels), 0.75);
  // Perfect classifier.
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
  // F1: tp=1 (0.9), fp=1 (0.8), fn=1 (0.3) -> 2*1/(2+1+1)=0.5.
  EXPECT_DOUBLE_EQ(F1Score(probs, labels), 0.5);
  EXPECT_GT(LogLoss(probs, labels), 0.0);
  EXPECT_NEAR(MeanSquaredError({1, 2}, {1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(R2Score({1, 2, 3}, {1, 2, 3}), 1.0, 1e-12);
}

TEST(LambdaModel, WrapsCallable) {
  auto m = MakeLambdaModel(2, [](const std::vector<double>& x) {
    return x[0] + x[1];
  });
  EXPECT_DOUBLE_EQ(m.Predict({1.0, 2.0}), 3.0);
  EXPECT_EQ(m.num_features(), 2u);
  Matrix batch = {{1, 1}, {2, 2}};
  auto preds = m.PredictBatch(batch);
  EXPECT_DOUBLE_EQ(preds[1], 4.0);
}

}  // namespace
}  // namespace xai
