// End-to-end integration tests: full pipelines crossing module
// boundaries, the flows a downstream user would actually run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "cf/dice.h"
#include "math/stats.h"
#include "cf/recourse.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "db/incremental.h"
#include "eval/fidelity.h"
#include "feature/kernel_shap.h"
#include "feature/lime.h"
#include "feature/tree_shap.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "obs/obs.h"
#include "rule/anchors.h"
#include "valuation/data_valuation.h"
#include "valuation/influence.h"

namespace xai {
namespace {

TEST(Integration, CsvToModelToThreeExplainers) {
  // The quickstart flow, through disk: generate -> CSV -> read -> train ->
  // explain with three methods -> all agree on the dominant feature class.
  const std::string path = "/tmp/xai_integration.csv";
  ASSERT_TRUE(WriteCsv(MakeLoanDataset(1200), path).ok());
  auto data = ReadCsv(path);
  ASSERT_TRUE(data.ok());
  Dataset ds = std::move(*data);
  std::remove(path.c_str());

  Rng rng(1);
  auto [train, test] = ds.Split(0.8, &rng);
  auto gbdt = GradientBoostedTrees::Fit(train, {.num_rounds = 50});
  ASSERT_TRUE(gbdt.ok());
  ASSERT_GT(EvaluateAuc(*gbdt, test), 0.7);

  const std::vector<double> x = test.row(0);
  TreeShapExplainer tshap(*gbdt, ds.schema());
  KernelShapExplainer kshap(*gbdt, train, {.max_background = 40});
  LimeExplainer lime(*gbdt, train, {.num_samples = 2000});
  auto a1 = tshap.Explain(x);
  auto a2 = kshap.Explain(x);
  auto a3 = lime.Explain(x);
  ASSERT_TRUE(a1.ok() && a2.ok() && a3.ok());
  // TreeSHAP and KernelSHAP explain the same model with different value
  // functions/scales; their rankings should still broadly agree: the top
  // TreeSHAP feature appears in KernelSHAP's top 3.
  const size_t top_ts = a1->TopFeatures(1)[0];
  const std::vector<size_t> top_ks = a2->TopFeatures(3);
  EXPECT_TRUE(std::find(top_ks.begin(), top_ks.end(), top_ts) !=
              top_ks.end());
}

TEST(Integration, DebugRetrainRepairLoop) {
  // The data-debugging loop: corrupt -> detect (influence) -> delete ->
  // incremental refresh -> accuracy recovers most of the gap.
  Dataset clean = MakeGaussianDataset(120, {.seed = 5, .dims = 4});
  Dataset validation = MakeGaussianDataset(800, {.seed = 6, .dims = 4});
  Dataset train = clean;
  Rng rng(7);
  std::vector<size_t> corrupted = InjectLabelNoise(&train, 0.3, &rng);

  LogisticRegression::Options opts{.lambda = 1e-2, .max_iter = 50,
                                   .tol = 1e-10};
  auto clean_model = LogisticRegression::Fit(clean, opts);
  auto dirty_model = LogisticRegression::Fit(train, opts);
  ASSERT_TRUE(clean_model.ok() && dirty_model.ok());
  const double clean_acc = EvaluateAccuracy(*clean_model, validation);
  const double dirty_acc = EvaluateAccuracy(*dirty_model, validation);
  ASSERT_GT(clean_acc, dirty_acc + 0.01);

  auto calc = InfluenceCalculator::Create(*dirty_model, train);
  ASSERT_TRUE(calc.ok());
  std::vector<double> values = calc->InfluenceOnValidationLoss(validation);
  std::vector<size_t> order(train.n());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<size_t> suspects(
      order.begin(), order.begin() + static_cast<long>(corrupted.size()));

  auto inc = IncrementalLogisticRegression::Fit(train, opts);
  ASSERT_TRUE(inc.ok());
  auto repaired_theta = inc->ThetaAfterRemoval(suspects, 3);
  ASSERT_TRUE(repaired_theta.ok());
  Dataset repaired_data = train.RemoveRows(suspects);
  auto repaired = LogisticRegression::FitFrom(
      repaired_data.x(), repaired_data.y(), *repaired_theta,
      {.lambda = 1e-2, .max_iter = 0, .tol = 1e-10});
  ASSERT_TRUE(repaired.ok());
  const double repaired_acc = EvaluateAccuracy(*repaired, validation);
  // Repair recovers at least half of the corruption-induced gap.
  EXPECT_GT(repaired_acc, dirty_acc + 0.5 * (clean_acc - dirty_acc));
}

TEST(Integration, DenialExplanationPackage) {
  // What a lender would ship for one denial: attribution + anchor +
  // counterfactual + recourse, all consistent with the model.
  Dataset ds = MakeLoanDataset(1500);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  auto logit = LogisticRegression::Fit(ds, {.lambda = 1e-3});
  ASSERT_TRUE(gbdt.ok() && logit.ok());

  size_t who = ds.n();
  for (size_t i = 0; i < ds.n(); ++i) {
    if (gbdt->Predict(ds.row(i)) < 0.3 && logit->Predict(ds.row(i)) < 0.45) {
      who = i;
      break;
    }
  }
  ASSERT_LT(who, ds.n());
  const std::vector<double> x = ds.row(who);

  TreeShapExplainer tshap(*gbdt, ds.schema());
  auto attr = tshap.Explain(x);
  ASSERT_TRUE(attr.ok());
  EXPECT_NEAR(attr->Reconstruction(), attr->prediction, 1e-7);

  AnchorsExplainer anchors(*gbdt, ds, {.precision_threshold = 0.85});
  auto rule = anchors.Explain(x);
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->Matches(x));
  EXPECT_DOUBLE_EQ(rule->outcome, 0.0);  // Anchoring the denial.

  FeatureSpace space = FeatureSpace::FromDataset(ds);
  space.SetImmutable(0);
  space.SetImmutable(6);
  auto cfs = DiceCounterfactuals(*gbdt, space, x, 1, {});
  ASSERT_TRUE(cfs.ok());
  for (const auto& cf : cfs->counterfactuals)
    EXPECT_GE(gbdt->Predict(cf.instance), 0.5);

  auto action = LinearRecourse(*logit, space, x, {.target_probability = 0.55});
  ASSERT_TRUE(action.ok());
  if (action->feasible) {
    std::vector<double> moved = x;
    for (const RecourseStep& s : action->steps) moved[s.feature] = s.to;
    EXPECT_GE(logit->Predict(moved), 0.55 - 1e-6);
  }
}

TEST(Integration, ExplainerFaithfulnessOrdering) {
  // Evaluation module over multiple explainers of one model: exact
  // (TreeSHAP on the margin) should be at least as faithful as LIME.
  Dataset ds = MakeLoanDataset(800);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  ASSERT_TRUE(gbdt.ok());
  KernelShapExplainer kshap(*gbdt, ds, {.max_background = 40});
  LimeExplainer lime(*gbdt, ds, {.num_samples = 500, .seed = 17});
  auto corr_kshap = AttributionCorrelation(*gbdt, &kshap, ds, 12);
  auto corr_lime = AttributionCorrelation(*gbdt, &lime, ds, 12);
  ASSERT_TRUE(corr_kshap.ok() && corr_lime.ok());
  EXPECT_GT(*corr_kshap, 0.5);
  EXPECT_GE(*corr_kshap, *corr_lime - 0.1);
}

TEST(Integration, InstrumentedExplainersReportConfiguredBudgets) {
  // The obs counters must agree exactly with the configured sampling
  // budgets — catching silent under-sampling regressions where an
  // explainer quietly draws fewer samples than asked.
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().ResetAll();

  Dataset ds = MakeLoanDataset(400);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 10});
  ASSERT_TRUE(gbdt.ok());
  const std::vector<double> x = ds.row(0);

  KernelShapOptions kopts;
  kopts.num_samples = 128;
  kopts.exact_up_to = 0;  // Force the sampling path.
  kopts.max_background = 20;
  KernelShapExplainer kshap(*gbdt, ds, kopts);
  ASSERT_TRUE(kshap.Explain(x).ok());

  auto snap = obs::MetricsRegistry::Global().TakeSnapshot();
  const uint64_t coalitions = snap.counters.at("feature.kernel_shap.coalitions");
  const uint64_t model_evals = snap.counters.at("core.game.model_evals");
  EXPECT_GT(model_evals, 0u);
  // Paired sampling evaluates (z, complement) per draw: exactly
  // 2 * (num_samples / 2) coalitions.
  EXPECT_EQ(coalitions, 2u * static_cast<uint64_t>(kopts.num_samples / 2));
  // Each coalition, plus v(empty) and v(full), averages the model over
  // max_background background rows.
  EXPECT_EQ(model_evals, (coalitions + 2) * kopts.max_background);

  // LIME draws exactly its configured perturbation budget.
  obs::MetricsRegistry::Global().ResetAll();
  LimeExplainer lime(*gbdt, ds, {.num_samples = 500, .seed = 3});
  ASSERT_TRUE(lime.Explain(x).ok());
  snap = obs::MetricsRegistry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counters.at("feature.lime.samples"), 500u);
  EXPECT_EQ(snap.counters.at("core.perturb.samples"), 500u);
  EXPECT_EQ(snap.counters.at("feature.lime.model_evals"), 500u);

  obs::MetricsRegistry::Global().ResetAll();
  obs::SetEnabled(false);
}

TEST(Integration, ValuationMethodsAgreeOnRanking) {
  // Two independent valuation families should produce correlated
  // rankings on the same corrupted dataset.
  Dataset train = MakeGaussianDataset(150, {.seed = 31, .dims = 3});
  Dataset validation = MakeGaussianDataset(400, {.seed = 32, .dims = 3});
  Rng rng(33);
  (void)InjectLabelNoise(&train, 0.2, &rng);

  std::vector<double> knn = ExactKnnShapley(train, validation, 5);
  auto model = LogisticRegression::Fit(train, {.lambda = 1e-2});
  ASSERT_TRUE(model.ok());
  auto calc = InfluenceCalculator::Create(*model, train);
  ASSERT_TRUE(calc.ok());
  std::vector<double> infl = calc->InfluenceOnValidationLoss(validation);
  EXPECT_GT(SpearmanCorrelation(knn, infl), 0.3);
}

}  // namespace
}  // namespace xai
