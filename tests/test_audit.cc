// Tests for the explanation audit ledger: record round-trips through the
// CRC-framed on-disk format, segment rotation + manifest ordering, crash
// recovery (torn final record truncated on reopen, header-torn segments),
// reader corruption policy (bit-flipped CRC mid-segment skips the rest of
// that segment only), overflow accounting on a full ring, query filters,
// top-k determinism — and a reader iterating while a live writer appends
// (the `audit` ctest label is part of the TSan job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/audit.h"

namespace xai::obs {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "xai_audit_" + name;
  fs::remove_all(dir);
  return dir;
}

/// A fully-populated record whose every field is a function of `i`, so a
/// round-trip mismatch pinpoints the field that broke.
AuditRecord MakeRecord(uint64_t i) {
  AuditRecord r;
  r.unix_ms = 1700000000000ull + i;
  r.trace_id = 0x1000 + i;
  r.row_hash = 0xABCD0000 + i;
  r.model_fingerprint = 0xFEED0000 + (i % 3);
  r.config_fingerprint = 0xC0FFEE00 + (i % 2);
  r.model_name = i % 2 == 0 ? "gbdt" : "logistic";
  r.model_version = static_cast<int32_t>(1 + i % 3);
  r.kind = static_cast<uint8_t>(i % 4);
  r.budget = static_cast<int32_t>(i % 5);
  r.queue_ms = 0.25f * static_cast<float>(i);
  r.sweep_ms = 1.5f * static_cast<float>(i);
  r.total_ms = 2.0f * static_cast<float>(i);
  r.batch_size = static_cast<uint32_t>(1 + i % 7);
  for (uint64_t j = 0; j < 8; ++j)
    r.instance.push_back(static_cast<double>(i * 100 + j) * 0.125);
  r.base_value = 0.5 + static_cast<double>(i) * 1e-3;
  r.prediction = 0.25 + static_cast<double>(i) * 1e-3;
  r.top_attr.push_back({static_cast<uint32_t>(i % 8), 0.75 - 0.01 * i});
  r.top_attr.push_back({static_cast<uint32_t>((i + 3) % 8), 0.10});
  return r;
}

void ExpectEqual(const AuditRecord& a, const AuditRecord& b) {
  EXPECT_EQ(a.unix_ms, b.unix_ms);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.row_hash, b.row_hash);
  EXPECT_EQ(a.model_fingerprint, b.model_fingerprint);
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.model_name, b.model_name);
  EXPECT_EQ(a.model_version, b.model_version);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.queue_ms, b.queue_ms);
  EXPECT_EQ(a.sweep_ms, b.sweep_ms);
  EXPECT_EQ(a.total_ms, b.total_ms);
  EXPECT_EQ(a.batch_size, b.batch_size);
  EXPECT_EQ(a.instance, b.instance);
  EXPECT_EQ(a.base_value, b.base_value);
  EXPECT_EQ(a.prediction, b.prediction);
  ASSERT_EQ(a.top_attr.size(), b.top_attr.size());
  for (size_t j = 0; j < a.top_attr.size(); ++j) {
    EXPECT_EQ(a.top_attr[j].index, b.top_attr[j].index);
    EXPECT_EQ(a.top_attr[j].value, b.top_attr[j].value);
  }
}

std::string LastSegmentPath(const std::string& dir) {
  auto reader = AuditReader::Open(dir);
  EXPECT_TRUE(reader.ok());
  EXPECT_FALSE(reader->segments().empty());
  return dir + "/" + reader->segments().back().file;
}

// ---------------------------------------------------------------------------
// Helpers under test directly.

TEST(AuditCrc32, KnownVector) {
  // The CRC-32/IEEE check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Slicing path (>= 8 bytes per step) must agree with itself across
  // lengths that exercise both the 8-byte and tail loops.
  const std::string s(1027, 'x');
  EXPECT_EQ(Crc32(s.data(), s.size()), Crc32(s.data(), s.size()));
}

TEST(AuditTopK, DeterministicOrderAndTies) {
  const std::vector<double> values = {0.1, -0.9, 0.9, 0.0, -0.2, 0.2};
  auto top = TopKAttributions(values, 3);
  ASSERT_EQ(top.size(), 3u);
  // |0.9| twice: the lower index (1) wins the tie and comes first.
  EXPECT_EQ(top[0].index, 1u);
  EXPECT_EQ(top[0].value, -0.9);
  EXPECT_EQ(top[1].index, 2u);
  EXPECT_EQ(top[1].value, 0.9);
  // |0.2| twice: index 4 before index 5.
  EXPECT_EQ(top[2].index, 4u);
  EXPECT_EQ(top[2].value, -0.2);

  // k >= size returns everything, still sorted by |value| desc.
  auto all = TopKAttributions(values, 99);
  ASSERT_EQ(all.size(), values.size());
  EXPECT_EQ(all.back().value, 0.0);

  // The Into variant reuses the output buffer and agrees exactly.
  std::vector<AuditTopAttr> out;
  out.reserve(16);
  TopKAttributionsInto(values, 3, &out);
  ASSERT_EQ(out.size(), 3u);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(out[j].index, top[j].index);
    EXPECT_EQ(out[j].value, top[j].value);
  }
  EXPECT_TRUE(TopKAttributions({}, 4).empty());
  EXPECT_TRUE(TopKAttributions(values, 0).empty());
}

// ---------------------------------------------------------------------------
// Round-trip, rotation, reopen.

TEST(AuditLog, RoundTripEveryField) {
  const std::string dir = ScratchDir("roundtrip");
  auto log = AuditLog::Open(dir);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  const size_t kN = 25;
  for (uint64_t i = 0; i < kN; ++i) (*log)->Append(MakeRecord(i));
  (*log)->Flush();
  const AuditLogStats st = (*log)->stats();
  EXPECT_EQ(st.appended, kN);
  EXPECT_EQ(st.written, kN);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_GE(st.fsyncs, 1u);
  log->reset();  // close

  auto reader = AuditReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  AuditScanStats scan;
  auto records = reader->ReadAll({}, &scan);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), kN);
  EXPECT_EQ(scan.records, kN);
  EXPECT_EQ(scan.matched, kN);
  EXPECT_EQ(scan.corrupt_frames, 0u);
  EXPECT_EQ(scan.torn_tail_bytes, 0u);
  for (uint64_t i = 0; i < kN; ++i) ExpectEqual(MakeRecord(i), (*records)[i]);
}

TEST(AuditLog, StagedAppendMatchesAppend) {
  const std::string dir = ScratchDir("staged");
  auto log = AuditLog::Open(dir);
  ASSERT_TRUE(log.ok());
  // Ring wrap-around with a tiny ring: slots are reused many times; the
  // staged API must still produce byte-faithful records because
  // StageAppend clears every field before handing the slot out.
  for (uint64_t i = 0; i < 64; ++i) {
    AuditRecord* slot = nullptr;
    while ((slot = (*log)->StageAppend()) == nullptr)
      std::this_thread::yield();  // ring full: wait for the drain
    const AuditRecord want = MakeRecord(i);
    slot->unix_ms = want.unix_ms;
    slot->trace_id = want.trace_id;
    slot->row_hash = want.row_hash;
    slot->model_fingerprint = want.model_fingerprint;
    slot->config_fingerprint = want.config_fingerprint;
    slot->model_name = want.model_name;
    slot->model_version = want.model_version;
    slot->kind = want.kind;
    slot->budget = want.budget;
    slot->queue_ms = want.queue_ms;
    slot->sweep_ms = want.sweep_ms;
    slot->total_ms = want.total_ms;
    slot->batch_size = want.batch_size;
    slot->instance = want.instance;
    slot->base_value = want.base_value;
    slot->prediction = want.prediction;
    slot->top_attr = want.top_attr;
    (*log)->CommitAppend();
  }
  (*log)->Flush();
  log->reset();

  auto records = AuditReader::Open(dir)->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 64u);
  for (uint64_t i = 0; i < 64; ++i) ExpectEqual(MakeRecord(i), (*records)[i]);
}

TEST(AuditLog, RotatesAndIteratesAcrossSegments) {
  const std::string dir = ScratchDir("rotate");
  AuditLogOptions opts;
  opts.segment_bytes = 4096;  // clamp floor: forces rotation every ~20 recs
  auto log = AuditLog::Open(dir, opts);
  ASSERT_TRUE(log.ok());
  const size_t kN = 200;
  for (uint64_t i = 0; i < kN; ++i) (*log)->Append(MakeRecord(i));
  (*log)->Flush();
  EXPECT_GE((*log)->stats().segments, 3u);
  log->reset();

  auto reader = AuditReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ASSERT_GE(reader->segments().size(), 3u);
  // Manifest order is id order, ids strictly increasing.
  for (size_t s = 1; s < reader->segments().size(); ++s)
    EXPECT_LT(reader->segments()[s - 1].id, reader->segments()[s].id);
  // Iteration crosses segment boundaries oldest-first without loss.
  AuditScanStats scan;
  uint64_t next = 0;
  Status st = reader->ForEach(
      {}, [&](const AuditRecord& r) {
        EXPECT_EQ(r.trace_id, 0x1000 + next);
        ++next;
      },
      &scan);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(next, kN);
  EXPECT_EQ(scan.corrupt_frames, 0u);
  EXPECT_EQ(scan.corrupt_segments, 0u);
}

TEST(AuditLog, ReopenAppendsToExistingLedger) {
  const std::string dir = ScratchDir("reopen");
  {
    auto log = AuditLog::Open(dir);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 0; i < 10; ++i) (*log)->Append(MakeRecord(i));
  }  // destructor drains + fsyncs
  {
    auto log = AuditLog::Open(dir);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ((*log)->stats().truncated_bytes, 0u);  // clean shutdown
    for (uint64_t i = 10; i < 20; ++i) (*log)->Append(MakeRecord(i));
  }
  auto records = AuditReader::Open(dir)->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) ExpectEqual(MakeRecord(i), (*records)[i]);
}

// ---------------------------------------------------------------------------
// Crash recovery.

TEST(AuditLog, TornFinalRecordTruncatedOnReopen) {
  const std::string dir = ScratchDir("torn");
  {
    auto log = AuditLog::Open(dir);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 0; i < 12; ++i) (*log)->Append(MakeRecord(i));
  }
  // Simulate a crash mid-append: a frame header promising more payload
  // than the file holds, followed by a few garbage bytes.
  const std::string seg = LastSegmentPath(dir);
  const uintmax_t clean_size = fs::file_size(seg);
  {
    std::FILE* f = std::fopen(seg.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint32_t magic = 0x52444158u;  // "XADR"
    const uint32_t len = 1 << 20;        // promises 1 MiB that never arrives
    const uint32_t crc = 0xDEADBEEFu;
    std::fwrite(&magic, 4, 1, f);
    std::fwrite(&len, 4, 1, f);
    std::fwrite(&crc, 4, 1, f);
    std::fwrite("torn", 4, 1, f);
    std::fclose(f);
  }

  // A reader sees the torn tail for what it is — quietly, with the intact
  // prefix fully readable.
  {
    AuditScanStats scan;
    auto records = AuditReader::Open(dir)->ReadAll({}, &scan);
    ASSERT_TRUE(records.ok());
    EXPECT_EQ(records->size(), 12u);
    EXPECT_EQ(scan.torn_tail_bytes, 16u);
    EXPECT_EQ(scan.corrupt_frames, 0u);
    EXPECT_EQ(scan.corrupt_segments, 0u);
  }

  // Reopening the writer truncates the torn tail and resumes appending at
  // the last verifiable frame.
  {
    auto log = AuditLog::Open(dir);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ((*log)->stats().truncated_bytes, 16u);
    EXPECT_EQ(fs::file_size(seg), clean_size);
    (*log)->Append(MakeRecord(12));
  }
  auto records = AuditReader::Open(dir)->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 13u);
  for (uint64_t i = 0; i < 13; ++i) ExpectEqual(MakeRecord(i), (*records)[i]);
}

TEST(AuditLog, HeaderTornLastSegmentRewrittenFresh) {
  const std::string dir = ScratchDir("tornheader");
  {
    auto log = AuditLog::Open(dir);
    ASSERT_TRUE(log.ok());
    (*log)->Append(MakeRecord(0));
  }
  // Crash so early the new segment didn't even get its 8-byte header out.
  const std::string seg = LastSegmentPath(dir);
  fs::resize_file(seg, 3);
  {
    auto log = AuditLog::Open(dir);
    ASSERT_TRUE(log.ok());
    (*log)->Append(MakeRecord(7));
  }
  auto records = AuditReader::Open(dir)->ReadAll();
  ASSERT_TRUE(records.ok());
  // Record 0 died with the torn header; record 7 lives in the re-created
  // segment under the same manifest id.
  ASSERT_EQ(records->size(), 1u);
  ExpectEqual(MakeRecord(7), (*records)[0]);
}

TEST(AuditReader, BitFlippedCrcMidSegmentSkipsRestOfThatSegmentOnly) {
  const std::string dir = ScratchDir("bitflip");
  AuditLogOptions opts;
  opts.segment_bytes = 4096;
  auto log = AuditLog::Open(dir, opts);
  ASSERT_TRUE(log.ok());
  const size_t kN = 120;
  for (uint64_t i = 0; i < kN; ++i) (*log)->Append(MakeRecord(i));
  (*log)->Flush();
  log->reset();

  auto reader = AuditReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ASSERT_GE(reader->segments().size(), 3u);

  // Flip one payload byte of the first frame in the FIRST segment: not the
  // final segment, so this is bit rot, not a torn tail.
  const std::string first =
      dir + "/" + reader->segments().front().file;
  {
    std::FILE* f = std::fopen(first.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // 8-byte segment header + 12-byte frame header + 2 bytes into payload.
    ASSERT_EQ(std::fseek(f, 8 + 12 + 2, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }

  AuditScanStats scan;
  auto records = reader->ReadAll({}, &scan);
  ASSERT_TRUE(records.ok());
  EXPECT_GE(scan.corrupt_frames, 1u);
  EXPECT_EQ(scan.corrupt_segments, 1u);
  EXPECT_EQ(scan.torn_tail_bytes, 0u);
  // The poisoned segment is abandoned at the bad frame; every later
  // segment is still read in full. The first surviving record is exactly
  // the first record of segment two.
  ASSERT_FALSE(records->empty());
  EXPECT_LT(records->size(), kN);
  uint64_t expect = records->front().trace_id - 0x1000;
  for (const AuditRecord& r : records.value())
    ExpectEqual(MakeRecord(expect++), r);
  EXPECT_EQ(expect, kN);
}

TEST(AuditReader, MissingSegmentFileCountedAndSkipped) {
  const std::string dir = ScratchDir("missing");
  AuditLogOptions opts;
  opts.segment_bytes = 4096;
  auto log = AuditLog::Open(dir, opts);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 120; ++i) (*log)->Append(MakeRecord(i));
  (*log)->Flush();
  log->reset();

  auto reader = AuditReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ASSERT_GE(reader->segments().size(), 3u);
  fs::remove(dir + "/" + reader->segments()[1].file);

  AuditScanStats scan;
  auto records = reader->ReadAll({}, &scan);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(scan.corrupt_segments, 1u);
  EXPECT_LT(records->size(), 120u);
  EXPECT_GT(records->size(), 0u);
}

// ---------------------------------------------------------------------------
// Backpressure, filters, live-reader concurrency.

TEST(AuditLog, FullRingDropsWithCounterNeverBlocks) {
  const std::string dir = ScratchDir("overflow");
  AuditLogOptions opts;
  opts.queue_capacity = 4;
  opts.start_paused = true;  // drain thread idles: the ring must fill
  auto log = AuditLog::Open(dir, opts);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < 10; ++i) (*log)->Append(MakeRecord(i));
  AuditLogStats st = (*log)->stats();
  EXPECT_EQ(st.appended, 4u);
  EXPECT_EQ(st.dropped, 6u);
  EXPECT_EQ(st.written, 0u);

  (*log)->ResumeDrain();
  (*log)->Flush();
  st = (*log)->stats();
  EXPECT_EQ(st.written, 4u);
  log->reset();

  auto records = AuditReader::Open(dir)->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);  // the accepted prefix, in order
  for (uint64_t i = 0; i < 4; ++i) ExpectEqual(MakeRecord(i), (*records)[i]);
}

TEST(AuditReader, QueryFilters) {
  const std::string dir = ScratchDir("query");
  auto log = AuditLog::Open(dir);
  ASSERT_TRUE(log.ok());
  const size_t kN = 30;
  for (uint64_t i = 0; i < kN; ++i) (*log)->Append(MakeRecord(i));
  (*log)->Flush();
  log->reset();

  auto reader = AuditReader::Open(dir);
  ASSERT_TRUE(reader.ok());

  AuditQuery q;
  q.model_name = "gbdt";  // even i
  auto by_name = reader->ReadAll(q);
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->size(), 15u);
  for (const AuditRecord& r : by_name.value())
    EXPECT_EQ(r.model_name, "gbdt");

  q = {};
  q.model_version = 2;  // i % 3 == 1
  auto by_version = reader->ReadAll(q);
  ASSERT_TRUE(by_version.ok());
  EXPECT_EQ(by_version->size(), 10u);

  q = {};
  q.kind = 3;  // i % 4 == 3
  auto by_kind = reader->ReadAll(q);
  ASSERT_TRUE(by_kind.ok());
  EXPECT_EQ(by_kind->size(), 7u);

  q = {};
  q.trace_id = 0x1000 + 17;
  auto by_trace = reader->ReadAll(q);
  ASSERT_TRUE(by_trace.ok());
  ASSERT_EQ(by_trace->size(), 1u);
  ExpectEqual(MakeRecord(17), (*by_trace)[0]);

  q = {};
  q.min_unix_ms = 1700000000000ull + 10;
  q.max_unix_ms = 1700000000000ull + 19;
  AuditScanStats scan;
  auto by_time = reader->ReadAll(q, &scan);
  ASSERT_TRUE(by_time.ok());
  EXPECT_EQ(by_time->size(), 10u);
  EXPECT_EQ(scan.records, kN);    // scanned everything...
  EXPECT_EQ(scan.matched, 10u);   // ...matched the window

  q = {};
  q.model_fingerprint = 0xFEED0000 + 1;  // i % 3 == 1
  auto by_fp = reader->ReadAll(q);
  ASSERT_TRUE(by_fp.ok());
  EXPECT_EQ(by_fp->size(), 10u);
}

TEST(AuditReader, ReadsWhileWriterAppends) {
  const std::string dir = ScratchDir("live");
  AuditLogOptions opts;
  opts.segment_bytes = 8192;  // rotate under the reader's feet too
  auto log = AuditLog::Open(dir, opts);
  ASSERT_TRUE(log.ok());
  AuditLog* raw = log->get();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < 600; ++i) {
      raw->Append(MakeRecord(i));
      if (i % 50 == 0) raw->Flush();
    }
    raw->Flush();
    done.store(true, std::memory_order_release);
  });

  // Concurrent readers must always see a verifiable prefix: monotonically
  // increasing trace ids from 0, never a decoded-but-garbage record. A
  // half-written tail frame looks torn on that pass, which is fine.
  size_t passes = 0;
  while (!done.load(std::memory_order_acquire) || passes < 3) {
    auto reader = AuditReader::Open(dir);
    ASSERT_TRUE(reader.ok());
    uint64_t next = 0;
    Status st = reader->ForEach({}, [&](const AuditRecord& r) {
      EXPECT_EQ(r.trace_id, 0x1000 + next);
      ExpectEqual(MakeRecord(next), r);
      ++next;
    });
    ASSERT_TRUE(st.ok());
    ++passes;
  }
  writer.join();
  log->reset();

  auto records = AuditReader::Open(dir)->ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 600u);
}

TEST(AuditReader, OpenFailsOnMissingLedger) {
  auto reader = AuditReader::Open(ScratchDir("nothere"));
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace xai::obs
