#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/provenance_poly.h"
#include "relational/query.h"

namespace xai {
namespace {

using PP = ProvenancePolynomial;

TEST(ProvenancePoly, BasicAlgebra) {
  PP x = PP::Var(1);
  PP y = PP::Var(2);
  PP p = (x + y) * (x + y);  // x^2 + 2xy + y^2.
  EXPECT_EQ(p.num_terms(), 3u);
  EXPECT_EQ(p.ToString(), "2*t1*t2 + t1^2 + t2^2");
  EXPECT_TRUE(PP::Zero().is_zero());
  EXPECT_EQ((p * PP::Zero()).num_terms(), 0u);
  EXPECT_EQ(p * PP::One(), p);
  EXPECT_EQ(p + PP::Zero(), p);
}

TEST(ProvenancePoly, RingLawsOnRandomPolynomials) {
  // Property: associativity, commutativity and distributivity hold for
  // random small polynomials.
  Rng rng(3);
  auto random_poly = [&]() {
    PP p = PP::Zero();
    const int terms = 1 + static_cast<int>(rng.NextInt(3));
    for (int t = 0; t < terms; ++t) {
      PP mono = PP::One();
      const int vars = 1 + static_cast<int>(rng.NextInt(3));
      for (int v = 0; v < vars; ++v)
        mono = mono * PP::Var(1 + rng.NextInt(4));
      p = p + mono;
    }
    return p;
  };
  for (int trial = 0; trial < 20; ++trial) {
    PP a = random_poly();
    PP b = random_poly();
    PP c = random_poly();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(ProvenancePoly, EvaluationIsHomomorphic) {
  Rng rng(5);
  std::map<TupleId, long long> assign = {{1, 2}, {2, 3}, {3, 1}, {4, 5}};
  auto random_poly = [&]() {
    PP p = PP::Zero();
    for (int t = 0; t < 3; ++t) {
      PP mono = PP::One();
      for (int v = 0; v < 2; ++v) mono = mono * PP::Var(1 + rng.NextInt(4));
      p = p + mono;
    }
    return p;
  };
  for (int trial = 0; trial < 20; ++trial) {
    PP a = random_poly();
    PP b = random_poly();
    EXPECT_EQ((a + b).EvaluateCounting(assign),
              a.EvaluateCounting(assign) + b.EvaluateCounting(assign));
    EXPECT_EQ((a * b).EvaluateCounting(assign),
              a.EvaluateCounting(assign) * b.EvaluateCounting(assign));
  }
}

TEST(ProvenancePoly, SemiringSpecializations) {
  // Query with two derivations: t1*t2 (join) + t3 (alternative).
  PP p = PP::Var(1) * PP::Var(2) + PP::Var(3);

  // Counting: each base tuple present once -> 2 derivations.
  EXPECT_EQ(p.EvaluateCounting({{1, 1}, {2, 1}, {3, 1}}), 2);
  // t1 duplicated twice -> join derivation doubles.
  EXPECT_EQ(p.EvaluateCounting({{1, 2}, {2, 1}, {3, 1}}), 3);

  // Boolean: survives deleting t3 (via t1*t2), survives deleting t1 (via
  // t3), dies when t1 and t3 both gone.
  EXPECT_TRUE(p.EvaluateBoolean({1, 2}));
  EXPECT_TRUE(p.EvaluateBoolean({3}));
  EXPECT_FALSE(p.EvaluateBoolean({2}));

  // Tropical: cheapest derivation. costs t1=1, t2=1, t3=5 -> join (2).
  EXPECT_DOUBLE_EQ(p.EvaluateTropical({{1, 1}, {2, 1}, {3, 5}}), 2.0);
  // t2 unavailable (huge cost) -> fall back to t3.
  EXPECT_DOUBLE_EQ(p.EvaluateTropical({{1, 1}, {3, 5}}), 5.0);
}

TEST(ProvenancePoly, RoundTripsWithWhyProvenance) {
  WhyProvenance prov = {{1, 2}, {3}};
  PP p = PP::FromWhyProvenance(prov);
  EXPECT_EQ(p.num_terms(), 2u);
  WhyProvenance back = p.ToWhyProvenance();
  EXPECT_EQ(back, NormalizeProvenance(prov));
  // Boolean evaluation matches witness semantics by construction.
  EXPECT_TRUE(p.EvaluateBoolean({1, 2}));
  EXPECT_FALSE(p.EvaluateBoolean({1}));
}

TEST(ProvenancePoly, AgreesWithEngineOnAJoin) {
  // Build the join provenance through the engine, lift to a polynomial,
  // and check the counting semiring counts join derivations.
  Relation orders("orders", {"cust", "amount"});
  const TupleId o1 = *orders.Insert({1, 10});
  const TupleId o2 = *orders.Insert({1, 20});
  Relation custs("custs", {"cust"});
  const TupleId c1 = *custs.Insert({1});
  auto joined = NaturalJoin(orders, custs);
  ASSERT_TRUE(joined.ok());
  PP total = PP::Zero();
  for (size_t i = 0; i < joined->num_rows(); ++i)
    total = total + PP::FromWhyProvenance(joined->provenance(i));
  // Two join results: o1*c1 + o2*c1.
  EXPECT_EQ(total.num_terms(), 2u);
  EXPECT_EQ(total.EvaluateCounting({{o1, 1}, {o2, 1}, {c1, 1}}), 2);
  // Duplicating the customer doubles every derivation.
  EXPECT_EQ(total.EvaluateCounting({{o1, 1}, {o2, 1}, {c1, 2}}), 4);
}

}  // namespace
}  // namespace xai
